//! One-call per-land analysis and paper-figure assembly.
//!
//! [`analyze_land`] runs the complete methodology of §3 on a trace at
//! both communication ranges; [`paper_figures`] lays the per-land
//! results out as the twelve panels of Figs. 1–4 plus the Fig. 3 zone
//! plot, with one series per land — exactly the shape of the paper's
//! evaluation section.
//!
//! ## Execution model
//!
//! The engine prepares the trace **once** ([`PreparedTrace`]): one
//! filter pass over every snapshot, one exclusion set, one proximity
//! edge extraction per range — shared by the contact extractor, the
//! line-of-sight metrics and the zone occupation, which previously each
//! re-filtered and re-indexed on their own. The per-snapshot work (edge
//! extraction, BFS diameters, clustering, binning) and the per-panel
//! figure assembly fan out over [`sl_par`] worker threads with an
//! index-ordered reduction, so the output is **byte-identical** to the
//! serial path — run under `sl_par::with_threads(1, ..)` to get the
//! reference serial execution of the very same code.
//!
//! The line-of-sight stage — historically ~83 % of the end-to-end wall
//! time — runs on the CSR kernel layer of [`sl_graph::csr`] (in-place
//! CSR rebuilds, merge-intersection clustering, 2-sweep + iFUB exact
//! diameters) with one reusable graph + scratch arena per worker via
//! [`sl_par::par_map_with`]; the kernels are exact, so the pipeline
//! output is unchanged byte for byte (the golden digest pins it).

use crate::contacts::{extract_contacts_prepared, ContactSamples};
use crate::coverage::{coverage_report, CoverageReport, COVERAGE_THRESHOLD, COVERAGE_WINDOW_TAUS};
use crate::los::{los_metrics_prepared, LosMetrics};
use crate::prep::PreparedTrace;
use crate::report::{Figure, FigureSet, Scale};
use crate::spatial::{zone_occupation_prepared, ZoneOccupation};
use crate::trips::{trip_metrics_excluding, TripMetrics};
use serde::{Deserialize, Serialize};
use sl_stats::ecdf::{ccdf_log_grid_sorted, median_sorted, Ccdf, Ecdf};
use sl_stats::fit::{fit_two_phase_sorted, TwoPhaseFit};
use sl_trace::{Trace, TraceSummary, UserId};

/// Bluetooth range (paper rb = 10 m).
pub const RB: f64 = 10.0;
/// WiFi range (paper rw = 80 m).
pub const RW: f64 = 80.0;
/// Zone-occupation cell side (paper L = 20 m).
pub const ZONE_L: f64 = 20.0;

/// Temporal analysis at one communication range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalAnalysis {
    /// The communication range, meters.
    pub range: f64,
    /// Raw CT/ICT/FT samples.
    pub samples: ContactSamples,
    /// Median contact time, seconds (`None` when no contacts closed).
    pub median_ct: Option<f64>,
    /// Median inter-contact time, seconds.
    pub median_ict: Option<f64>,
    /// Median first-contact time, seconds.
    pub median_ft: Option<f64>,
    /// Two-phase (power-law head, exponential tail) fit of CT.
    pub ct_fit: Option<TwoPhaseFit>,
    /// Two-phase fit of ICT.
    pub ict_fit: Option<TwoPhaseFit>,
}

impl TemporalAnalysis {
    /// Derive the temporal summary from extracted samples. The sample
    /// vectors arrive sorted from the extractor, so medians and fits
    /// work on borrowed slices — no clone, no re-sort.
    fn from_samples(range: f64, samples: ContactSamples) -> Self {
        TemporalAnalysis {
            range,
            median_ct: median_sorted(&samples.contact_times),
            median_ict: median_sorted(&samples.inter_contact_times),
            median_ft: median_sorted(&samples.first_contact_times),
            ct_fit: fit_two_phase_sorted(&samples.contact_times, 0.9, 0.25),
            ict_fit: fit_two_phase_sorted(&samples.inter_contact_times, 0.9, 0.25),
            samples,
        }
    }
}

/// The full per-land analysis: everything the paper reports about one
/// target land.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LandAnalysis {
    /// Land name (from the trace metadata).
    pub land: String,
    /// Trace summary (Table 1 equivalent).
    pub summary: TraceSummary,
    /// Temporal analysis at rb = 10 m.
    pub bluetooth: TemporalAnalysis,
    /// Temporal analysis at rw = 80 m.
    pub wifi: TemporalAnalysis,
    /// Line-of-sight metrics at rb.
    pub los_bluetooth: LosMetrics,
    /// Line-of-sight metrics at rw.
    pub los_wifi: LosMetrics,
    /// Zone occupation at L = 20 m.
    pub zones: ZoneOccupation,
    /// Trip metrics.
    pub trips: TripMetrics,
    /// Windowed measurement coverage; windows below
    /// [`COVERAGE_THRESHOLD`] are flagged — their metrics describe the
    /// instrument's blindness more than the users' mobility.
    #[serde(default)]
    pub coverage: CoverageReport,
}

/// Lowercase `name` into a metric-name segment: anything outside
/// `[a-z0-9]` becomes `_`, so land names like "Dance Island" yield
/// stable keys (`analysis.dance_island.prep.wall_s`).
fn metric_slug(name: &str) -> String {
    let slug: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if slug.is_empty() {
        "_".into()
    } else {
        slug
    }
}

/// Temporal + line-of-sight analysis at one range over a prepared
/// trace: one edge extraction feeding both metric families. The LOS
/// fan-out (the BFS-heavy hot path) runs on the calling thread's full
/// worker budget while the serial contact state machine overlaps on a
/// sibling thread.
///
/// `obs` is the land's metric-name prefix (`analysis.<land>`); each
/// stage records `<obs>.<stage>.r<range>` wall/CPU histograms. Timings
/// are a pure side channel — they never touch the analysis values, so
/// output bytes are identical with metrics enabled, disabled, or absent.
fn range_analysis(prep: &PreparedTrace, range: f64, obs: &str) -> (TemporalAnalysis, LosMetrics) {
    let r = range as i64;
    let edges = {
        let _t = sl_obs::span(&format!("{obs}.edges.r{r}"));
        prep.edges_at(range)
    };
    let (los, samples) = sl_par::join(
        || {
            let _t = sl_obs::span(&format!("{obs}.los.r{r}"));
            los_metrics_prepared(prep, &edges)
        },
        || {
            let _t = sl_obs::span(&format!("{obs}.contacts.r{r}"));
            extract_contacts_prepared(prep, &edges)
        },
    );
    let analysis = {
        let _t = sl_obs::span(&format!("{obs}.fits.r{r}"));
        TemporalAnalysis::from_samples(range, samples)
    };
    (analysis, los)
}

/// Run the complete §3 methodology on one trace, excluding the given
/// users (the measuring crawler's own avatar).
///
/// Filters and indexes the trace once, then fans the per-snapshot work
/// out over worker threads (see the module docs); the result is
/// byte-identical to a serial run of the same code
/// (`sl_par::with_threads(1, || analyze_land(..))`).
pub fn analyze_land(trace: &Trace, exclude: &[UserId]) -> LandAnalysis {
    let obs = format!("analysis.{}", metric_slug(&trace.meta.name));
    let prep = {
        let _t = sl_obs::span(&format!("{obs}.prep"));
        PreparedTrace::new(trace, exclude)
    };
    let (bluetooth, los_bluetooth) = range_analysis(&prep, RB, &obs);
    let (wifi, los_wifi) = range_analysis(&prep, RW, &obs);
    let zones = {
        let _t = sl_obs::span(&format!("{obs}.zones"));
        zone_occupation_prepared(&prep, ZONE_L)
    };
    LandAnalysis {
        land: trace.meta.name.clone(),
        summary: TraceSummary::of(trace),
        bluetooth,
        wifi,
        los_bluetooth,
        los_wifi,
        zones,
        trips: trip_metrics_excluding(trace, &prep.excluded),
        coverage: coverage_report(trace, COVERAGE_WINDOW_TAUS, COVERAGE_THRESHOLD),
    }
}

/// Log-grid CCDF series over **already-sorted** samples — the contact
/// extractor emits its vectors sorted, so no clone or re-sort is
/// needed. Empty samples yield an empty series rather than panicking.
fn ccdf_series_sorted(label: &str, xs: &[f64], log_points: usize) -> sl_stats::ecdf::Series {
    if xs.is_empty() {
        return sl_stats::ecdf::Series::new(label, vec![], vec![]);
    }
    ccdf_log_grid_sorted(label, xs, log_points)
}

fn cdf_series(label: &str, xs: &[f64]) -> sl_stats::ecdf::Series {
    if xs.is_empty() {
        return sl_stats::ecdf::Series::new(label, vec![], vec![]);
    }
    Ecdf::new(xs.to_vec()).series(label)
}

/// Selector returning one temporal-metric sample vector.
type TemporalGetter = fn(&TemporalAnalysis) -> &Vec<f64>;
/// Selector returning one trip-metric sample vector.
type TripGetter = fn(&TripMetrics) -> &Vec<f64>;

/// A deferred panel construction; boxed so heterogeneous panels share
/// one work list for the parallel fan-out.
type PanelBuilder<'a> = Box<dyn Fn() -> Figure + Send + Sync + 'a>;

/// Assemble the paper's figures from per-land analyses (one series per
/// land, in the order given).
///
/// Each of the 16 panels is an independent pure construction, so they
/// fan out over worker threads; the index-ordered reduction keeps the
/// paper's fixed panel order, byte-identical to building them serially.
pub fn paper_figures(lands: &[LandAnalysis]) -> FigureSet {
    const GRID: usize = 80;
    let mut builders: Vec<PanelBuilder> = Vec::with_capacity(16);

    // Fig. 1: temporal CCDFs at both ranges.
    let temporal: [(&str, &str, TemporalGetter); 3] = [
        ("ct", "Contact Time CCDF", |t| &t.samples.contact_times),
        ("ict", "Inter-Contact Time CCDF", |t| {
            &t.samples.inter_contact_times
        }),
        ("ft", "First Contact Time CCDF", |t| {
            &t.samples.first_contact_times
        }),
    ];
    for (ri, (rname, pick)) in [("r=10m", 0usize), ("r=80m", 1)].into_iter().enumerate() {
        for (mi, (mid, mtitle, getter)) in temporal.into_iter().enumerate() {
            let panel = (b'a' + (ri * 3 + mi) as u8) as char;
            builders.push(Box::new(move || {
                let mut fig = Figure::new(
                    format!("fig1{panel}_{mid}"),
                    format!("{mtitle}, {rname}"),
                    "Time (s)",
                    "1-F(x)",
                    Scale::Log,
                );
                for la in lands {
                    let ta = if pick == 0 { &la.bluetooth } else { &la.wifi };
                    fig.push(ccdf_series_sorted(&la.land, getter(ta), GRID));
                }
                fig
            }));
        }
    }

    // Fig. 2: line-of-sight network metrics at both ranges.
    fn los_of(la: &LandAnalysis, pick: usize) -> &LosMetrics {
        if pick == 0 {
            &la.los_bluetooth
        } else {
            &la.los_wifi
        }
    }
    for (ri, (rname, pick)) in [("r=10m", 0usize), ("r=80m", 1)].into_iter().enumerate() {
        let panel_base = ri * 3;
        builders.push(Box::new(move || {
            let mut deg = Figure::new(
                format!("fig2{}_degree", (b'a' + panel_base as u8) as char),
                format!("Node Degree CCDF, {rname}"),
                "Degree",
                "1-F(x)",
                Scale::Linear,
            );
            for la in lands {
                let m = los_of(la, pick);
                // Degree is a CCDF on a linear axis: use the step series.
                if m.degrees.is_empty() {
                    deg.push(sl_stats::ecdf::Series::new(la.land.clone(), vec![], vec![]));
                } else {
                    deg.push(Ccdf::new(m.degrees.clone()).series(la.land.clone()));
                }
            }
            deg
        }));
        builders.push(Box::new(move || {
            let mut dia = Figure::new(
                format!("fig2{}_diameter", (b'a' + panel_base as u8 + 1) as char),
                format!("Network Diameter CDF, {rname}"),
                "Diameter",
                "F(x)",
                Scale::Linear,
            );
            for la in lands {
                dia.push(cdf_series(&la.land, &los_of(la, pick).diameters));
            }
            dia
        }));
        builders.push(Box::new(move || {
            let mut clu = Figure::new(
                format!("fig2{}_clustering", (b'a' + panel_base as u8 + 2) as char),
                format!("Clustering Coefficient CDF, {rname}"),
                "Coefficient",
                "F(x)",
                Scale::Linear,
            );
            for la in lands {
                clu.push(cdf_series(&la.land, &los_of(la, pick).clusterings));
            }
            clu
        }));
    }

    // Fig. 3: zone occupation CDF.
    builders.push(Box::new(move || {
        let mut zones = Figure::new(
            "fig3_zones",
            "Zone Occupation CDF, L=20m",
            "Number of users per cell",
            "F(x)",
            Scale::Linear,
        );
        for la in lands {
            zones.push(cdf_series(&la.land, &la.zones.counts));
        }
        zones
    }));

    // Fig. 4: trip analysis CDFs.
    let trips: [(&str, &str, &str, TripGetter); 3] = [
        (
            "fig4a_travel_length",
            "Travel Length CDF",
            "Length (m)",
            |t| &t.travel_lengths,
        ),
        (
            "fig4b_effective_travel_time",
            "Effective Travel Time CDF",
            "Time (s)",
            |t| &t.effective_travel_times,
        ),
        ("fig4c_travel_time", "Travel Time CDF", "Time (s)", |t| {
            &t.travel_times
        }),
    ];
    for (id, title, xlabel, getter) in trips {
        builders.push(Box::new(move || {
            let mut fig = Figure::new(id, title, xlabel, "F(x)", Scale::Linear);
            for la in lands {
                fig.push(cdf_series(&la.land, getter(&la.trips)));
            }
            fig
        }));
    }

    let mut set = FigureSet::default();
    for fig in sl_par::par_map(&builders, |_, build| build()) {
        set.push(fig);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot, Trace};

    /// A small synthetic trace with a tight pair and a wanderer.
    fn synthetic_trace() -> Trace {
        let mut t = Trace::new(LandMeta::standard("Synth", 10.0));
        for k in 1..=60i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            // Pair dancing around (50, 50).
            let wiggle = (k % 3) as f64;
            s.push(UserId(1), Position::new(50.0 + wiggle, 50.0, 22.0));
            s.push(UserId(2), Position::new(53.0, 50.0 + wiggle, 22.0));
            // A wanderer crossing the land at 2 m/s.
            if k <= 40 {
                s.push(
                    UserId(3),
                    Position::new(20.0 + 2.0 * 10.0 * k as f64 / 10.0, 200.0, 22.0),
                );
            }
            t.push(s);
        }
        t
    }

    #[test]
    fn full_analysis_runs() {
        let trace = synthetic_trace();
        let a = analyze_land(&trace, &[]);
        assert_eq!(a.land, "Synth");
        assert_eq!(a.summary.unique_users, 3);
        // The synthetic trace has a complete τ grid: nothing flagged.
        assert!(a.coverage.clean());
        assert!((a.coverage.overall - 1.0).abs() < 1e-12);
        // The tight pair is always in contact: censored, not completed.
        assert_eq!(a.bluetooth.samples.censored_contacts, 1);
        assert!(a.bluetooth.median_ft.is_some());
        assert!(!a.zones.counts.is_empty());
        assert_eq!(a.trips.sessions, 3);
    }

    #[test]
    fn wifi_dominates_bluetooth_contacts() {
        let trace = synthetic_trace();
        let a = analyze_land(&trace, &[]);
        let bt_contacts =
            a.bluetooth.samples.contact_times.len() + a.bluetooth.samples.censored_contacts;
        let wifi_contacts = a.wifi.samples.contact_times.len() + a.wifi.samples.censored_contacts;
        assert!(
            wifi_contacts >= bt_contacts,
            "larger range cannot see fewer contacts"
        );
    }

    #[test]
    fn figures_have_paper_layout() {
        let trace = synthetic_trace();
        let a = analyze_land(&trace, &[]);
        let set = paper_figures(&[a]);
        // 6 (fig1) + 6 (fig2) + 1 (fig3) + 3 (fig4) = 16 panels.
        assert_eq!(set.figures.len(), 16);
        assert!(set.get("fig1a_ct").is_some());
        assert!(set.get("fig1f_ft").is_some());
        assert!(set.get("fig2a_degree").is_some());
        assert!(set.get("fig2f_clustering").is_some());
        assert!(set.get("fig3_zones").is_some());
        assert!(set.get("fig4c_travel_time").is_some());
        // One series per land.
        assert_eq!(set.get("fig3_zones").unwrap().series.len(), 1);
    }

    #[test]
    fn figures_multi_land() {
        let trace = synthetic_trace();
        let a1 = analyze_land(&trace, &[]);
        let mut a2 = a1.clone();
        a2.land = "Other".into();
        let set = paper_figures(&[a1, a2]);
        let fig = set.get("fig4a_travel_length").unwrap();
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[1].label, "Other");
    }

    #[test]
    fn metric_slug_sanitizes_land_names() {
        assert_eq!(metric_slug("Dance Island"), "dance_island");
        assert_eq!(metric_slug("Isle-9/Beach"), "isle_9_beach");
        assert_eq!(metric_slug(""), "_");
    }

    #[test]
    fn analysis_records_stage_timings() {
        let trace = synthetic_trace();
        analyze_land(&trace, &[]);
        let json = sl_obs::export_json();
        for stage in [
            "analysis.synth.prep.wall_s",
            "analysis.synth.edges.r10.wall_s",
            "analysis.synth.contacts.r80.wall_s",
            "analysis.synth.los.r10.wall_s",
            "analysis.synth.fits.r80.wall_s",
            "analysis.synth.zones.wall_s",
        ] {
            assert!(json.contains(stage), "missing {stage} in export");
        }
    }

    #[test]
    fn serde_round_trip() {
        let trace = synthetic_trace();
        let a = analyze_land(&trace, &[]);
        let json = serde_json::to_string(&a).unwrap();
        let back: LandAnalysis = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
