//! Line-of-sight network analysis (paper §3.2, Fig. 2).
//!
//! For every snapshot, the users in range `r` of each other form a
//! communication graph. Fig. 2 reports, aggregated over the whole
//! measurement period: the CCDF of node degree (one sample per user per
//! snapshot), the CDF of the diameter of the largest connected
//! component (one sample per snapshot), and the CDF of the mean
//! clustering coefficient (one sample per snapshot).

use crate::prep::{PreparedTrace, RangeEdges};
use serde::{Deserialize, Serialize};
use sl_graph::{diameter_largest_component, mean_clustering, Graph};
use sl_trace::{Trace, UserId};

/// Aggregated line-of-sight metrics for one trace at one range.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LosMetrics {
    /// Node degrees, one sample per (user, snapshot).
    pub degrees: Vec<f64>,
    /// Diameter of the largest connected component, one per non-empty
    /// snapshot.
    pub diameters: Vec<f64>,
    /// Mean local clustering coefficient, one per non-empty snapshot.
    pub clusterings: Vec<f64>,
    /// Fraction of degree samples equal to zero (the paper's "users
    /// with no neighbors").
    pub isolated_fraction: f64,
}

/// Per-snapshot result of the parallel LOS pass.
struct SnapshotLos {
    degrees: Vec<f64>,
    zero_count: usize,
    diameter: f64,
    clustering: f64,
}

/// Compute line-of-sight metrics at communication range `range`,
/// ignoring `exclude`d users and seated avatars.
///
/// Convenience wrapper over [`los_metrics_prepared`]; the pipeline
/// prepares the trace once and shares it across metric families.
pub fn los_metrics(trace: &Trace, range: f64, exclude: &[UserId]) -> LosMetrics {
    let prep = PreparedTrace::new(trace, exclude);
    let edges = prep.edges_at(range);
    los_metrics_prepared(&prep, &edges)
}

/// Compute line-of-sight metrics from a prepared trace and its
/// proximity edges. The BFS-heavy per-snapshot work (diameter of the
/// largest component, clustering) fans out over snapshots with
/// [`sl_par::par_map`]; the index-ordered reduction keeps every output
/// vector in snapshot order, byte-identical to the serial walk.
pub fn los_metrics_prepared(prep: &PreparedTrace, edges: &RangeEdges) -> LosMetrics {
    let per_snapshot: Vec<Option<SnapshotLos>> = sl_par::par_map(&prep.snapshots, |i, snap| {
        if snap.is_empty() {
            return None;
        }
        let g = Graph::from_edges(snap.len(), &edges.per_snapshot[i]);
        let mut degrees = Vec::with_capacity(snap.len());
        let mut zero_count = 0usize;
        for d in g.degrees() {
            if d == 0 {
                zero_count += 1;
            }
            degrees.push(d as f64);
        }
        Some(SnapshotLos {
            degrees,
            zero_count,
            diameter: diameter_largest_component(&g) as f64,
            clustering: mean_clustering(&g).expect("non-empty graph"),
        })
    });

    let mut out = LosMetrics::default();
    let mut zero_count = 0usize;
    for snap in per_snapshot.into_iter().flatten() {
        out.degrees.extend_from_slice(&snap.degrees);
        zero_count += snap.zero_count;
        out.diameters.push(snap.diameter);
        out.clusterings.push(snap.clustering);
    }
    out.isolated_fraction = if out.degrees.is_empty() {
        0.0
    } else {
        zero_count as f64 / out.degrees.len() as f64
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot, Trace};

    fn snap_at(t: f64, xs: &[(u32, f64, f64)]) -> Snapshot {
        let mut s = Snapshot::new(t);
        for &(u, x, y) in xs {
            s.push(UserId(u), Position::new(x, y, 22.0));
        }
        s
    }

    #[test]
    fn degrees_aggregate_over_snapshots() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        // Snapshot 1: a close pair and a loner.
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 5.0, 0.0), (3, 100.0, 100.0)],
        ));
        // Snapshot 2: all isolated.
        t.push(snap_at(
            20.0,
            &[(1, 0.0, 0.0), (2, 50.0, 0.0), (3, 100.0, 100.0)],
        ));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.degrees.len(), 6);
        let ones = m.degrees.iter().filter(|&&d| d == 1.0).count();
        let zeros = m.degrees.iter().filter(|&&d| d == 0.0).count();
        assert_eq!(ones, 2);
        assert_eq!(zeros, 4);
        assert!((m.isolated_fraction - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_per_snapshot() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        // Chain 0-8-16 at r=10: path of 3 -> diameter 2.
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 8.0, 0.0), (3, 16.0, 0.0)],
        ));
        // Pair only -> diameter 1.
        t.push(snap_at(20.0, &[(1, 0.0, 0.0), (2, 8.0, 0.0)]));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.diameters, vec![2.0, 1.0]);
    }

    #[test]
    fn clustering_of_triangle_snapshot() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 6.0, 0.0), (3, 3.0, 5.0)],
        ));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.clusterings, vec![1.0]);
    }

    #[test]
    fn larger_range_shrinks_isolation() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 50.0, 0.0), (3, 100.0, 0.0)],
        ));
        let mb = los_metrics(&t, 10.0, &[]);
        let mw = los_metrics(&t, 80.0, &[]);
        assert_eq!(mb.isolated_fraction, 1.0);
        assert_eq!(mw.isolated_fraction, 0.0);
        // Chain at r=80: diameter 2; nothing at r=10: diameter 0.
        assert_eq!(mb.diameters, vec![0.0]);
        assert_eq!(mw.diameters, vec![2.0]);
    }

    #[test]
    fn excluded_and_seated_filtered() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let mut s = Snapshot::new(10.0);
        s.push(UserId(1), Position::new(0.0, 0.0, 22.0));
        s.push(UserId(2), Position::new(5.0, 0.0, 22.0));
        s.push(UserId(9), Position::new(2.0, 0.0, 22.0)); // crawler
        s.push(UserId(3), Position::SEATED);
        t.push(s);
        let m = los_metrics(&t, 10.0, &[UserId(9)]);
        assert_eq!(m.degrees.len(), 2, "only users 1 and 2 count");
        assert!(m.degrees.iter().all(|&d| d == 1.0));
    }

    #[test]
    fn empty_snapshots_skipped() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        t.push(Snapshot::new(10.0));
        t.push(snap_at(20.0, &[(1, 0.0, 0.0)]));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.diameters.len(), 1);
        assert_eq!(m.degrees.len(), 1);
    }
}
