//! Line-of-sight network analysis (paper §3.2, Fig. 2).
//!
//! For every snapshot, the users in range `r` of each other form a
//! communication graph. Fig. 2 reports, aggregated over the whole
//! measurement period: the CCDF of node degree (one sample per user per
//! snapshot), the CDF of the diameter of the largest connected
//! component (one sample per snapshot), and the CDF of the mean
//! clustering coefficient (one sample per snapshot).

use crate::prep::{PreparedTrace, RangeEdges};
use serde::{Deserialize, Serialize};
use sl_graph::{CsrGraph, CsrScratch};
use sl_trace::{Trace, UserId};

/// Aggregated line-of-sight metrics for one trace at one range.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LosMetrics {
    /// Node degrees, one sample per (user, snapshot).
    pub degrees: Vec<f64>,
    /// Diameter of the largest connected component, one per non-empty
    /// snapshot.
    pub diameters: Vec<f64>,
    /// Mean local clustering coefficient, one per non-empty snapshot.
    pub clusterings: Vec<f64>,
    /// Fraction of degree samples equal to zero (the paper's "users
    /// with no neighbors").
    pub isolated_fraction: f64,
}

/// Per-snapshot result of the parallel LOS pass.
struct SnapshotLos {
    degrees: Vec<f64>,
    zero_count: usize,
    diameter: f64,
    clustering: f64,
}

/// Compute line-of-sight metrics at communication range `range`,
/// ignoring `exclude`d users and seated avatars.
///
/// Convenience wrapper over [`los_metrics_prepared`]; the pipeline
/// prepares the trace once and shares it across metric families.
pub fn los_metrics(trace: &Trace, range: f64, exclude: &[UserId]) -> LosMetrics {
    let prep = PreparedTrace::new(trace, exclude);
    let edges = prep.edges_at(range);
    los_metrics_prepared(&prep, &edges)
}

/// Compute line-of-sight metrics from a prepared trace and its
/// proximity edges — the hottest stage of the whole pipeline, running
/// on the CSR kernel layer of [`sl_graph::csr`].
///
/// Per snapshot: one in-place CSR rebuild straight from the prepared
/// edge list (no per-vertex allocation, no O(deg) dedup scans), degrees
/// read off the offset array without an intermediate `Vec<usize>`,
/// clustering by merge-intersection triangle counting, and the exact
/// diameter by 2-sweep + iFUB eccentricity pruning. The fan-out uses
/// [`sl_par::par_map_with`], which gives every worker thread one
/// long-lived `(CsrGraph, CsrScratch)` arena reused across all of its
/// snapshots; the index-ordered reduction keeps every output vector in
/// snapshot order.
///
/// The kernels are exact, so the result is **byte-identical** to
/// [`los_metrics_prepared_reference`] (the retained naive
/// implementation) — the golden regression digest and the kernel
/// property suite both pin this.
pub fn los_metrics_prepared(prep: &PreparedTrace, edges: &RangeEdges) -> LosMetrics {
    let per_snapshot: Vec<Option<SnapshotLos>> = sl_par::par_map_with(
        &prep.snapshots,
        || (CsrGraph::default(), CsrScratch::new()),
        |(g, scratch), i, snap| {
            if snap.is_empty() {
                return None;
            }
            g.rebuild(snap.len(), edges.edges_of(i));
            let mut degrees = Vec::with_capacity(snap.len());
            let mut zero_count = 0usize;
            for d in g.degrees() {
                if d == 0 {
                    zero_count += 1;
                }
                degrees.push(d as f64);
            }
            Some(SnapshotLos {
                degrees,
                zero_count,
                diameter: g.diameter_largest_component(scratch) as f64,
                clustering: g.mean_clustering(scratch).expect("non-empty graph"),
            })
        },
    );
    reduce_snapshots(per_snapshot)
}

/// The naive implementation `los_metrics_prepared` replaced, kept
/// in-tree as the reference oracle: adjacency-list graphs rebuilt per
/// snapshot, `has_edge`-scan clustering, BFS-from-every-vertex
/// diameters. The property suite and `analysis_bench`'s kernel
/// comparison assert the CSR path reproduces it byte for byte; the
/// bench also records the measured speedup in `BENCH_analysis.json`.
pub fn los_metrics_prepared_reference(prep: &PreparedTrace, edges: &RangeEdges) -> LosMetrics {
    use sl_graph::{diameter_largest_component, mean_clustering, Graph};
    let per_snapshot: Vec<Option<SnapshotLos>> = sl_par::par_map(&prep.snapshots, |i, snap| {
        if snap.is_empty() {
            return None;
        }
        let g = Graph::from_edges(snap.len(), edges.edges_of(i));
        let mut degrees = Vec::with_capacity(snap.len());
        let mut zero_count = 0usize;
        for d in g.degrees() {
            if d == 0 {
                zero_count += 1;
            }
            degrees.push(d as f64);
        }
        Some(SnapshotLos {
            degrees,
            zero_count,
            diameter: diameter_largest_component(&g) as f64,
            clustering: mean_clustering(&g).expect("non-empty graph"),
        })
    });
    reduce_snapshots(per_snapshot)
}

/// Snapshot-ordered reduction shared by the CSR and reference paths:
/// concatenate degree samples, collect per-snapshot diameters and
/// clusterings, derive the isolated fraction.
fn reduce_snapshots(per_snapshot: Vec<Option<SnapshotLos>>) -> LosMetrics {
    let mut out = LosMetrics::default();
    let mut zero_count = 0usize;
    for snap in per_snapshot.into_iter().flatten() {
        out.degrees.extend_from_slice(&snap.degrees);
        zero_count += snap.zero_count;
        out.diameters.push(snap.diameter);
        out.clusterings.push(snap.clustering);
    }
    out.isolated_fraction = if out.degrees.is_empty() {
        0.0
    } else {
        zero_count as f64 / out.degrees.len() as f64
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot, Trace};

    fn snap_at(t: f64, xs: &[(u32, f64, f64)]) -> Snapshot {
        let mut s = Snapshot::new(t);
        for &(u, x, y) in xs {
            s.push(UserId(u), Position::new(x, y, 22.0));
        }
        s
    }

    #[test]
    fn degrees_aggregate_over_snapshots() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        // Snapshot 1: a close pair and a loner.
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 5.0, 0.0), (3, 100.0, 100.0)],
        ));
        // Snapshot 2: all isolated.
        t.push(snap_at(
            20.0,
            &[(1, 0.0, 0.0), (2, 50.0, 0.0), (3, 100.0, 100.0)],
        ));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.degrees.len(), 6);
        let ones = m.degrees.iter().filter(|&&d| d == 1.0).count();
        let zeros = m.degrees.iter().filter(|&&d| d == 0.0).count();
        assert_eq!(ones, 2);
        assert_eq!(zeros, 4);
        assert!((m.isolated_fraction - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_per_snapshot() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        // Chain 0-8-16 at r=10: path of 3 -> diameter 2.
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 8.0, 0.0), (3, 16.0, 0.0)],
        ));
        // Pair only -> diameter 1.
        t.push(snap_at(20.0, &[(1, 0.0, 0.0), (2, 8.0, 0.0)]));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.diameters, vec![2.0, 1.0]);
    }

    #[test]
    fn clustering_of_triangle_snapshot() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 6.0, 0.0), (3, 3.0, 5.0)],
        ));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.clusterings, vec![1.0]);
    }

    #[test]
    fn larger_range_shrinks_isolation() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        t.push(snap_at(
            10.0,
            &[(1, 0.0, 0.0), (2, 50.0, 0.0), (3, 100.0, 0.0)],
        ));
        let mb = los_metrics(&t, 10.0, &[]);
        let mw = los_metrics(&t, 80.0, &[]);
        assert_eq!(mb.isolated_fraction, 1.0);
        assert_eq!(mw.isolated_fraction, 0.0);
        // Chain at r=80: diameter 2; nothing at r=10: diameter 0.
        assert_eq!(mb.diameters, vec![0.0]);
        assert_eq!(mw.diameters, vec![2.0]);
    }

    #[test]
    fn excluded_and_seated_filtered() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let mut s = Snapshot::new(10.0);
        s.push(UserId(1), Position::new(0.0, 0.0, 22.0));
        s.push(UserId(2), Position::new(5.0, 0.0, 22.0));
        s.push(UserId(9), Position::new(2.0, 0.0, 22.0)); // crawler
        s.push(UserId(3), Position::SEATED);
        t.push(s);
        let m = los_metrics(&t, 10.0, &[UserId(9)]);
        assert_eq!(m.degrees.len(), 2, "only users 1 and 2 count");
        assert!(m.degrees.iter().all(|&d| d == 1.0));
    }

    #[test]
    fn csr_kernels_match_reference_bit_for_bit() {
        // A trace dense enough to produce multi-component snapshots,
        // triangles, and isolated vertices at both paper ranges.
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in 1..=40u64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            for u in 0..(next() % 40) {
                let r = next();
                s.push(
                    UserId(u as u32),
                    Position::new((r % 256) as f64, (r / 256 % 256) as f64, 22.0),
                );
            }
            t.push(s);
        }
        let prep = crate::prep::PreparedTrace::new(&t, &[]);
        for range in [10.0, 80.0] {
            let edges = prep.edges_at(range);
            let fast = los_metrics_prepared(&prep, &edges);
            let naive = los_metrics_prepared_reference(&prep, &edges);
            assert_eq!(fast, naive, "CSR kernels drifted at r={range}");
        }
    }

    #[test]
    fn empty_snapshots_skipped() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        t.push(Snapshot::new(10.0));
        t.push(snap_at(20.0, &[(1, 0.0, 0.0)]));
        let m = los_metrics(&t, 10.0, &[]);
        assert_eq!(m.diameters.len(), 1);
        assert_eq!(m.degrees.len(), 1);
    }
}
