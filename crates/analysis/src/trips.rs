//! Trip analysis (paper §3.2 and Fig. 4): per-user travel length,
//! effective travel time, and travel (login/connection) time.
//!
//! Metrics are computed per *session* reconstructed from snapshot
//! presence (a user visiting twice contributes two samples, matching
//! what a presence-based crawler can actually observe):
//!
//! * **Travel length** — cumulative ground distance covered between the
//!   user's login and logout positions (Fig. 4a);
//! * **Effective travel time** — total time spent moving, excluding
//!   pause times (Fig. 4b);
//! * **Travel time** — total connection time to the monitored land
//!   (Fig. 4c, the paper's "login time").

use serde::{Deserialize, Serialize};
use sl_trace::{extract_sessions, Trace, UserId};
use std::collections::HashSet;

/// Movement threshold (meters between consecutive snapshots) below
/// which a user counts as standing still: SL avatars idle-shift by
/// centimeters, which must not count as travel.
pub const STILL_EPSILON: f64 = 0.5;

/// Snapshot gaps (in τ units) bridged when reconstructing sessions; a
/// crawler reconnect blanking one snapshot must not split every session
/// in two.
pub const SESSION_GAP_TOLERANCE: usize = 2;

/// Per-session trip samples for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TripMetrics {
    /// Cumulative path lengths, meters.
    pub travel_lengths: Vec<f64>,
    /// Time spent moving, seconds.
    pub effective_travel_times: Vec<f64>,
    /// Session durations, seconds.
    pub travel_times: Vec<f64>,
    /// Number of sessions analyzed.
    pub sessions: usize,
}

/// Compute trip metrics, ignoring `exclude`d users (the crawler) and
/// sessions consisting of a single snapshot (no motion observable).
pub fn trip_metrics(trace: &Trace, exclude: &[UserId]) -> TripMetrics {
    let excluded: HashSet<UserId> = exclude.iter().copied().collect();
    trip_metrics_excluding(trace, &excluded)
}

/// [`trip_metrics`] with a pre-built exclusion set — the pipeline
/// materializes the set once per analysis and passes it to every
/// consumer instead of each rebuilding it.
pub fn trip_metrics_excluding(trace: &Trace, excluded: &HashSet<UserId>) -> TripMetrics {
    let mut out = TripMetrics::default();
    for session in extract_sessions(trace, SESSION_GAP_TOLERANCE) {
        if excluded.contains(&session.user) || session.path.len() < 2 {
            continue;
        }
        // Seated observations carry no position; a session that is
        // mostly sentinel would corrupt the length sum. Skip sentinel
        // points within the path.
        let mut length = 0.0;
        let mut moving_time = 0.0;
        let mut prev: Option<(f64, sl_trace::Position)> = None;
        for &(t, pos) in &session.path {
            if pos.is_seated_sentinel() {
                prev = None;
                continue;
            }
            if let Some((pt, ppos)) = prev {
                let d = ppos.distance_xy(&pos);
                length += d;
                if d > STILL_EPSILON {
                    moving_time += t - pt;
                }
            }
            prev = Some((t, pos));
        }
        out.travel_lengths.push(length);
        out.effective_travel_times.push(moving_time);
        out.travel_times.push(session.duration());
        out.sessions += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot, Trace};

    fn push_user(t: &mut Trace, times_pos: &[(f64, f64, f64)], user: u32) {
        // Rebuild: each entry is (time, x, y) for a single-user trace.
        for &(time, x, y) in times_pos {
            let mut s = Snapshot::new(time);
            s.push(UserId(user), Position::new(x, y, 22.0));
            t.push(s);
        }
    }

    #[test]
    fn length_and_times() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        push_user(
            &mut t,
            &[
                (10.0, 0.0, 0.0),
                (20.0, 30.0, 0.0),  // moved 30 m
                (30.0, 30.0, 0.0),  // still
                (40.0, 30.0, 40.0), // moved 40 m
            ],
            1,
        );
        let m = trip_metrics(&t, &[]);
        assert_eq!(m.sessions, 1);
        assert!((m.travel_lengths[0] - 70.0).abs() < 1e-9);
        assert!((m.effective_travel_times[0] - 20.0).abs() < 1e-9);
        assert!((m.travel_times[0] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn idle_shift_not_counted_as_motion() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        push_user(
            &mut t,
            &[(10.0, 0.0, 0.0), (20.0, 0.3, 0.0), (30.0, 0.5, 0.0)],
            1,
        );
        let m = trip_metrics(&t, &[]);
        assert_eq!(
            m.effective_travel_times[0], 0.0,
            "sub-epsilon shifts are idling"
        );
        assert!(m.travel_lengths[0] < 0.6);
    }

    #[test]
    fn single_snapshot_session_skipped() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        push_user(&mut t, &[(10.0, 5.0, 5.0)], 1);
        let m = trip_metrics(&t, &[]);
        assert_eq!(m.sessions, 0);
    }

    #[test]
    fn crawler_excluded() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for k in 1..=3 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            s.push(UserId(1), Position::new(k as f64, 0.0, 22.0));
            s.push(UserId(9), Position::new(0.0, k as f64 * 10.0, 22.0));
            t.push(s);
        }
        let m = trip_metrics(&t, &[UserId(9)]);
        assert_eq!(m.sessions, 1);
    }

    #[test]
    fn two_visits_two_sessions() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        // Present at t=10..20, absent until t=100 (gap of 7 snapshots >
        // tolerance 2), present again 100..110.
        let mut times = vec![];
        for &time in &[10.0, 20.0, 100.0, 110.0] {
            times.push((time, time, 0.0));
        }
        push_user(&mut t, &times, 1);
        let m = trip_metrics(&t, &[]);
        assert_eq!(m.sessions, 2);
    }

    #[test]
    fn seated_points_break_path_without_poisoning_length() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let path = [
            (10.0, Position::new(10.0, 0.0, 22.0)),
            (20.0, Position::SEATED),
            (30.0, Position::new(12.0, 0.0, 22.0)),
        ];
        for (time, pos) in path {
            let mut s = Snapshot::new(time);
            s.push(UserId(1), pos);
            t.push(s);
        }
        let m = trip_metrics(&t, &[]);
        assert_eq!(m.sessions, 1);
        // Without sentinel handling the length would include two ~10 m
        // hops to and from the origin; with it, nothing is counted
        // across the seated gap.
        assert_eq!(m.travel_lengths[0], 0.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(LandMeta::standard("T", 10.0));
        let m = trip_metrics(&t, &[]);
        assert_eq!(m, TripMetrics::default());
    }
}
