//! Per-interval measurement coverage.
//!
//! The paper's methodology assumes one snapshot every τ. A crawl
//! through a faulty grid delivers less: kicks, stalls and throttling
//! punch holes in the snapshot grid, and a metric computed over a
//! half-blind interval silently underestimates presence. This module
//! makes the deficit explicit — the trace's observation span is cut
//! into fixed windows, each window's expected-vs-observed snapshot
//! count becomes a coverage ratio, and windows below a threshold are
//! flagged so downstream consumers can exclude or caveat them.

use serde::{Deserialize, Serialize};
use sl_trace::Trace;

/// Default analysis window, in snapshot intervals (τ).
pub const COVERAGE_WINDOW_TAUS: usize = 10;
/// Default minimum acceptable per-window coverage.
pub const COVERAGE_THRESHOLD: f64 = 0.5;

/// One window of the coverage report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalCoverage {
    /// Window start (virtual seconds, inclusive).
    pub start: f64,
    /// Window end (virtual seconds, inclusive).
    pub end: f64,
    /// Snapshots a clean crawl would have delivered here.
    pub expected: usize,
    /// Snapshots actually observed.
    pub observed: usize,
    /// `observed / expected`, capped at 1.
    pub coverage: f64,
    /// True when coverage fell below the report's threshold.
    pub flagged: bool,
}

/// Windowed coverage of one trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Window length, virtual seconds.
    pub window: f64,
    /// Flagging threshold.
    pub threshold: f64,
    /// Per-window detail, in time order.
    pub intervals: Vec<IntervalCoverage>,
    /// Number of flagged windows.
    pub flagged: usize,
    /// Observed / expected over the whole observation span.
    pub overall: f64,
}

impl CoverageReport {
    /// True when every window met the threshold.
    pub fn clean(&self) -> bool {
        self.flagged == 0
    }
}

/// Compute the windowed coverage of `trace` using windows of
/// `window_taus` snapshot intervals and the given flagging threshold.
pub fn coverage_report(trace: &Trace, window_taus: usize, threshold: f64) -> CoverageReport {
    let tau = trace.meta.tau;
    let window = tau * window_taus.max(1) as f64;
    let mut report = CoverageReport {
        window,
        threshold,
        intervals: Vec::new(),
        flagged: 0,
        overall: 1.0,
    };
    let (Some(first), Some(last)) = (trace.snapshots.first(), trace.snapshots.last()) else {
        return report;
    };
    let span = last.t - first.t;
    if span <= 0.0 {
        return report;
    }

    let n_windows = (span / window).ceil() as usize;
    let mut total_expected = 0usize;
    let mut total_observed = 0usize;
    for w in 0..n_windows {
        let lo = first.t + w as f64 * window;
        let hi = (lo + window).min(last.t);
        // Each window owns the τ-grid points in (lo, hi]; the first
        // window additionally owns the opening snapshot at lo.
        let mut expected = ((hi - lo) / tau).round() as usize;
        let mut observed = trace
            .snapshots
            .iter()
            .filter(|s| s.t > lo && s.t <= hi)
            .count();
        if w == 0 {
            expected += 1;
            observed += usize::from((first.t - lo).abs() < f64::EPSILON);
        }
        if expected == 0 {
            continue;
        }
        let coverage = (observed as f64 / expected as f64).min(1.0);
        let flagged = coverage < threshold;
        report.intervals.push(IntervalCoverage {
            start: lo,
            end: hi,
            expected,
            observed,
            coverage,
            flagged,
        });
        report.flagged += usize::from(flagged);
        total_expected += expected;
        total_observed += observed.min(expected);
    }
    if total_expected > 0 {
        report.overall = total_observed as f64 / total_expected as f64;
    }
    report
}

/// Strip the snapshots of flagged windows out of a trace, keeping its
/// gap records verbatim (they document blindness, which removing the
/// half-blind windows does not change). The result is what "exclude
/// low-coverage intervals" means for metric computation.
pub fn covered_only(trace: &Trace, report: &CoverageReport) -> Trace {
    let mut out = Trace::new(trace.meta.clone());
    out.gaps = trace.gaps.clone();
    for snap in &trace.snapshots {
        let dropped = report
            .intervals
            .iter()
            .any(|iv| iv.flagged && snap.t >= iv.start && snap.t <= iv.end);
        if !dropped {
            out.push(snap.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Snapshot, Trace};

    /// τ = 10 trace with snapshots at the given multiples of τ.
    fn trace_at(steps: &[u32]) -> Trace {
        let mut t = Trace::new(LandMeta::standard("C", 10.0));
        for &k in steps {
            t.push(Snapshot::new(k as f64 * 10.0));
        }
        t
    }

    #[test]
    fn full_grid_is_fully_covered() {
        let steps: Vec<u32> = (0..=30).collect();
        let r = coverage_report(&trace_at(&steps), 10, 0.5);
        assert_eq!(r.flagged, 0);
        assert!((r.overall - 1.0).abs() < 1e-12, "overall {}", r.overall);
        assert!(r
            .intervals
            .iter()
            .all(|iv| (iv.coverage - 1.0).abs() < 1e-12));
        assert!(r.clean());
    }

    #[test]
    fn hole_flags_its_window() {
        // Snapshots 0..=10, then nothing until 28..=30: the middle
        // window [100, 200] observes ~2 of 10 expected.
        let steps: Vec<u32> = (0..=10).chain(28..=30).collect();
        let r = coverage_report(&trace_at(&steps), 10, 0.5);
        assert!(r.flagged >= 1, "report {r:?}");
        assert!(r.overall < 1.0);
        let flagged: Vec<&IntervalCoverage> = r.intervals.iter().filter(|iv| iv.flagged).collect();
        assert!(flagged.iter().any(|iv| iv.start >= 99.0 && iv.end <= 201.0));
    }

    #[test]
    fn empty_and_single_snapshot_traces_are_clean() {
        let r = coverage_report(&trace_at(&[]), 10, 0.5);
        assert!(r.intervals.is_empty() && r.clean());
        let r = coverage_report(&trace_at(&[5]), 10, 0.5);
        assert!(r.intervals.is_empty() && r.clean());
        assert_eq!(r.overall, 1.0);
    }

    #[test]
    fn covered_only_drops_flagged_snapshots() {
        let steps: Vec<u32> = (0..=10).chain(28..=30).collect();
        let t = trace_at(&steps);
        let r = coverage_report(&t, 10, 0.5);
        let filtered = covered_only(&t, &r);
        assert!(filtered.len() < t.len());
        // Every surviving snapshot sits in an unflagged window.
        for snap in &filtered.snapshots {
            assert!(!r
                .intervals
                .iter()
                .any(|iv| iv.flagged && snap.t >= iv.start && snap.t <= iv.end));
        }
    }

    #[test]
    fn expected_counts_match_the_tau_grid() {
        let steps: Vec<u32> = (0..=25).collect();
        let r = coverage_report(&trace_at(&steps), 10, 0.5);
        // Windows: [0,100] (11 incl. opening), (100,200] (10), (200,250] (5).
        let expected: Vec<usize> = r.intervals.iter().map(|iv| iv.expected).collect();
        assert_eq!(expected, vec![11, 10, 5]);
        let observed: Vec<usize> = r.intervals.iter().map(|iv| iv.observed).collect();
        assert_eq!(observed, vec![11, 10, 5]);
    }

    #[test]
    fn report_serde_round_trips() {
        let steps: Vec<u32> = (0..=12).collect();
        let r = coverage_report(&trace_at(&steps), 10, 0.5);
        let json = serde_json::to_string(&r).unwrap();
        let back: CoverageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
