//! Figure assembly and export: the bridge between raw metric samples
//! and the artifacts the paper prints (CCDF/CDF plots). Figures can be
//! exported as CSV (for external plotting) and rendered as ASCII charts
//! (for terminal-first reproduction runs).

use serde::{Deserialize, Serialize};
use sl_stats::ecdf::Series;
use std::io::Write;

/// Axis scale of a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Logarithmic axis (base 10).
    Log,
}

/// One figure: several labelled series over shared axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier matching the paper ("fig1a", "fig3", …).
    pub id: String,
    /// Human title ("Contact Time CCDF, r=10m").
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// X-axis scale.
    pub xscale: Scale,
    /// The series (one per land, typically).
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
        xscale: Scale,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            xscale,
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Write the figure as long-format CSV: `series,x,y`.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "series,x,y")?;
        for s in &self.series {
            for (x, y) in s.x.iter().zip(&s.y) {
                writeln!(w, "{},{x},{y}", s.label)?;
            }
        }
        Ok(())
    }

    /// Render an ASCII chart (width × height characters of plot area).
    ///
    /// Each series gets a distinct glyph; the legend maps glyphs to
    /// labels. Intended for quick shape inspection in a terminal, not
    /// for publication.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        assert!(width >= 16 && height >= 4, "canvas too small");
        let glyphs = ['*', 'o', '+', 'x', '#', '@'];
        let mut canvas = vec![vec![' '; width]; height];

        // Global axis ranges across series.
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for (&x, &y) in s.x.iter().zip(&s.y) {
                let xv = match self.xscale {
                    Scale::Linear => x,
                    Scale::Log => {
                        if x <= 0.0 {
                            continue;
                        }
                        x.log10()
                    }
                };
                x_min = x_min.min(xv);
                x_max = x_max.max(xv);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() || x_max <= x_min {
            return format!("{} — (no data)\n", self.title);
        }
        if y_max <= y_min {
            y_max = y_min + 1.0;
        }

        for (si, s) in self.series.iter().enumerate() {
            let glyph = glyphs[si % glyphs.len()];
            for (&x, &y) in s.x.iter().zip(&s.y) {
                let xv = match self.xscale {
                    Scale::Linear => x,
                    Scale::Log => {
                        if x <= 0.0 {
                            continue;
                        }
                        x.log10()
                    }
                };
                let cx = ((xv - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
                let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                canvas[row][cx.min(width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{} [{}]\n", self.title, self.id));
        for (i, row) in canvas.iter().enumerate() {
            let y_val = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
            out.push_str(&format!("{y_val:7.2} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        let x_lo = match self.xscale {
            Scale::Linear => format!("{x_min:.1}"),
            Scale::Log => format!("1e{x_min:.1}"),
        };
        let x_hi = match self.xscale {
            Scale::Linear => format!("{x_max:.1}"),
            Scale::Log => format!("1e{x_max:.1}"),
        };
        out.push_str(&format!(
            "        +{}\n         {} .. {} ({})\n",
            "-".repeat(width),
            x_lo,
            x_hi,
            self.xlabel
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "         {} {}\n",
                glyphs[si % glyphs.len()],
                s.label
            ));
        }
        out
    }
}

/// A collection of figures keyed by id — one experiment's full output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureSet {
    /// Figures in paper order.
    pub figures: Vec<Figure>,
}

impl FigureSet {
    /// Add a figure.
    pub fn push(&mut self, f: Figure) {
        self.figures.push(f);
    }

    /// Look up a figure by id.
    pub fn get(&self, id: &str) -> Option<&Figure> {
        self.figures.iter().find(|f| f.id == id)
    }

    /// Write every figure as `<dir>/<id>.csv`.
    pub fn write_csv_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for f in &self.figures {
            let file = std::fs::File::create(dir.join(format!("{}.csv", f.id)))?;
            f.write_csv(std::io::BufWriter::new(file))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("fig_t", "Test", "Time (s)", "1-F(x)", Scale::Log);
        f.push(Series::new(
            "Apfelland",
            vec![10.0, 100.0, 1000.0],
            vec![1.0, 0.5, 0.1],
        ));
        f.push(Series::new(
            "Dance",
            vec![10.0, 100.0, 1000.0],
            vec![1.0, 0.7, 0.2],
        ));
        f
    }

    #[test]
    fn csv_format() {
        let f = sample_figure();
        let mut buf = Vec::new();
        f.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines[1], "Apfelland,10,1");
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn ascii_render_contains_title_and_legend() {
        let f = sample_figure();
        let art = f.render_ascii(40, 10);
        assert!(art.contains("Test [fig_t]"));
        assert!(art.contains("* Apfelland"));
        assert!(art.contains("o Dance"));
        // Plot rows + axis + legend.
        assert!(art.lines().count() >= 13);
    }

    #[test]
    fn ascii_render_empty_figure() {
        let f = Figure::new("e", "Empty", "x", "y", Scale::Linear);
        let art = f.render_ascii(40, 10);
        assert!(art.contains("no data"));
    }

    #[test]
    fn log_scale_skips_nonpositive() {
        let mut f = Figure::new("l", "Log", "x", "y", Scale::Log);
        f.push(Series::new(
            "s",
            vec![0.0, 10.0, 100.0],
            vec![1.0, 0.5, 0.1],
        ));
        let art = f.render_ascii(30, 6);
        assert!(art.contains("1e1.0 .. 1e2.0"));
    }

    #[test]
    fn figure_set_lookup_and_csv_dir() {
        let mut set = FigureSet::default();
        set.push(sample_figure());
        assert!(set.get("fig_t").is_some());
        assert!(set.get("nope").is_none());
        let dir = std::env::temp_dir().join(format!("sl_figset_{}", std::process::id()));
        set.write_csv_dir(&dir).unwrap();
        assert!(dir.join("fig_t.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serde_round_trip() {
        let f = sample_figure();
        let json = serde_json::to_string(&f).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
