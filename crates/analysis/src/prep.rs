//! One-pass snapshot preparation shared by every analysis module.
//!
//! The paper's methodology (§3) computes several metric families over
//! the same 24 h of τ = 10 s snapshots at two communication ranges.
//! Done naively — as the first version of this crate did — every module
//! re-walks every snapshot, re-filters excluded users and seated
//! sentinels, and rebuilds a spatial grid index, once per module per
//! range: six full filter passes and four grid builds per snapshot.
//!
//! [`PreparedTrace`] hoists the shared work out:
//!
//! * the exclusion set is materialized **once** (not once per module),
//! * each snapshot is filtered **once** into columnar `users` + `points`
//!   vectors reused by contacts, line-of-sight, and zone occupation,
//! * per-snapshot proximity edges at a given range are extracted
//!   **once** ([`PreparedTrace::edges_at`]) and shared by the contact
//!   state machine and the line-of-sight graph metrics.
//!
//! Both the filter pass and the edge extraction fan out over snapshots
//! with [`sl_par::par_map`], whose index-ordered reduction keeps the
//! result byte-identical to the serial walk.

use sl_graph::GridIndex;
use sl_store::{SegmentReader, StoreError};
use sl_trace::{LandMeta, Snapshot, Trace, UserId};
use std::collections::HashSet;
use std::path::Path;

/// One snapshot, filtered and laid out column-wise: `users[i]` stood at
/// `points[i]`. Excluded users and seated sentinels are already gone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreparedSnapshot {
    /// Snapshot time, virtual seconds.
    pub t: f64,
    /// Users with usable positions, in snapshot entry order.
    pub users: Vec<UserId>,
    /// Ground-plane positions, parallel to `users`.
    pub points: Vec<(f64, f64)>,
}

impl PreparedSnapshot {
    /// Number of usable observations.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no usable observation survived the filter.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// The per-snapshot filter shared by the batch ([`PreparedTrace`]) and
/// streaming ([`prepared_windows`]) paths: drop excluded users (the
/// measuring crawler) and seated-sentinel observations, lay the rest
/// out column-wise. One filter, two execution models — the streamed
/// snapshots are byte-identical to the batch-prepared ones.
#[derive(Debug, Clone)]
pub struct SnapshotFilter {
    excluded: HashSet<UserId>,
}

impl SnapshotFilter {
    /// Build the exclusion set once.
    pub fn new(exclude: &[UserId]) -> Self {
        SnapshotFilter {
            excluded: exclude.iter().copied().collect(),
        }
    }

    /// Filter one raw snapshot into columnar form.
    pub fn filter(&self, snap: &Snapshot) -> PreparedSnapshot {
        let mut users = Vec::with_capacity(snap.entries.len());
        let mut points = Vec::with_capacity(snap.entries.len());
        for obs in &snap.entries {
            if self.excluded.contains(&obs.user) || obs.pos.is_seated_sentinel() {
                continue;
            }
            users.push(obs.user);
            points.push(obs.pos.xy());
        }
        PreparedSnapshot {
            t: snap.t,
            users,
            points,
        }
    }
}

/// Proximity edges of every snapshot at one communication range, in
/// snapshot order. Edges are `(i, j)` indices into the corresponding
/// [`PreparedSnapshot`]'s columns, exactly as the grid index emits them.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeEdges {
    /// The communication range these edges were extracted at, meters.
    pub range: f64,
    /// Per-snapshot edge lists, parallel to `PreparedTrace::snapshots`.
    pub per_snapshot: Vec<Vec<(u32, u32)>>,
}

/// A trace prepared for analysis: filtered columnar snapshots plus the
/// trace it came from (for metadata and modules that need raw access).
#[derive(Debug)]
pub struct PreparedTrace<'a> {
    /// The underlying trace (metadata, gaps, raw snapshots).
    pub trace: &'a Trace,
    /// The exclusion set, built once for the whole analysis.
    pub excluded: HashSet<UserId>,
    /// Filtered snapshots, in trace order.
    pub snapshots: Vec<PreparedSnapshot>,
}

impl<'a> PreparedTrace<'a> {
    /// Filter `trace` once: drop `exclude`d users (the measuring
    /// crawler) and seated-sentinel observations from every snapshot.
    pub fn new(trace: &'a Trace, exclude: &[UserId]) -> Self {
        let filter = SnapshotFilter::new(exclude);
        let snapshots = sl_par::par_map(&trace.snapshots, |_, snap| filter.filter(snap));
        PreparedTrace {
            trace,
            excluded: filter.excluded,
            snapshots,
        }
    }

    /// Snapshot interval τ of the underlying trace.
    pub fn tau(&self) -> f64 {
        self.trace.meta.tau
    }

    /// Extract the proximity edges of every snapshot at `range`, one
    /// grid build per snapshot — shared downstream by the contact
    /// extractor and the line-of-sight metrics, which previously each
    /// built their own index.
    pub fn edges_at(&self, range: f64) -> RangeEdges {
        let per_snapshot = sl_par::par_map(&self.snapshots, |_, snap| {
            if snap.points.len() < 2 {
                return Vec::new();
            }
            GridIndex::new(&snap.points, range).pairs_within()
        });
        RangeEdges {
            range,
            per_snapshot,
        }
    }
}

/// Streaming preparation over an on-disk [`sl_store`] segmented store:
/// windows of filtered columnar snapshots, never the whole trace. Peak
/// RSS is bounded by `window` snapshots regardless of trace length —
/// the store-backed counterpart of [`PreparedTrace::new`], using the
/// very same [`SnapshotFilter`], so each streamed snapshot is
/// byte-identical to its batch-prepared twin.
pub struct PreparedWindows {
    meta: LandMeta,
    filter: SnapshotFilter,
    windows: sl_store::Windows,
}

impl PreparedWindows {
    /// Land metadata from the store manifest.
    pub fn meta(&self) -> &LandMeta {
        &self.meta
    }
}

impl Iterator for PreparedWindows {
    type Item = Result<Vec<PreparedSnapshot>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        let window = match self.windows.next()? {
            Ok(w) => w,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(window
            .snapshots
            .iter()
            .map(|s| self.filter.filter(s))
            .collect()))
    }
}

/// Open a store for streaming analysis: iterate windows of at most
/// `window` prepared snapshots (gap records are skipped — coverage
/// accounting needs the raw store, not the filtered stream).
pub fn prepared_windows(
    dir: &Path,
    exclude: &[UserId],
    window: usize,
) -> Result<PreparedWindows, StoreError> {
    let reader = SegmentReader::open(dir)?;
    Ok(PreparedWindows {
        meta: reader.meta().clone(),
        filter: SnapshotFilter::new(exclude),
        windows: reader.windows(window),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_graph::proximity_edges;
    use sl_trace::Position;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(LandMeta::standard("P", 10.0));
        for k in 1..=5i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            s.push(UserId(1), Position::new(10.0 + k as f64, 20.0, 22.0));
            s.push(UserId(2), Position::new(12.0, 20.0, 22.0));
            s.push(UserId(7), Position::SEATED);
            s.push(UserId(9), Position::new(100.0, 100.0, 22.0));
            t.push(s);
        }
        t
    }

    #[test]
    fn filters_excluded_and_seated_once() {
        let t = sample_trace();
        let prep = PreparedTrace::new(&t, &[UserId(9)]);
        assert_eq!(prep.snapshots.len(), 5);
        for snap in &prep.snapshots {
            assert_eq!(snap.users, vec![UserId(1), UserId(2)]);
            assert_eq!(snap.len(), snap.points.len());
            assert!(!snap.is_empty());
        }
        assert!(prep.excluded.contains(&UserId(9)));
        assert_eq!(prep.tau(), 10.0);
    }

    #[test]
    fn edges_match_direct_extraction() {
        let t = sample_trace();
        let prep = PreparedTrace::new(&t, &[]);
        for range in [10.0, 80.0] {
            let edges = prep.edges_at(range);
            assert_eq!(edges.range, range);
            assert_eq!(edges.per_snapshot.len(), prep.snapshots.len());
            for (snap, got) in prep.snapshots.iter().zip(&edges.per_snapshot) {
                assert_eq!(got, &proximity_edges(&snap.points, range));
            }
        }
    }

    #[test]
    fn serial_and_parallel_prep_identical() {
        let t = sample_trace();
        let serial = sl_par::with_threads(1, || {
            let p = PreparedTrace::new(&t, &[UserId(9)]);
            (p.edges_at(80.0), p.snapshots)
        });
        let parallel = sl_par::with_threads(4, || {
            let p = PreparedTrace::new(&t, &[UserId(9)]);
            (p.edges_at(80.0), p.snapshots)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_trace_prepares_empty() {
        let t = Trace::new(LandMeta::standard("P", 10.0));
        let prep = PreparedTrace::new(&t, &[]);
        assert!(prep.snapshots.is_empty());
        assert!(prep.edges_at(10.0).per_snapshot.is_empty());
    }
}
