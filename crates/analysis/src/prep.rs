//! One-pass snapshot preparation shared by every analysis module.
//!
//! The paper's methodology (§3) computes several metric families over
//! the same 24 h of τ = 10 s snapshots at two communication ranges.
//! Done naively — as the first version of this crate did — every module
//! re-walks every snapshot, re-filters excluded users and seated
//! sentinels, and rebuilds a spatial grid index, once per module per
//! range: six full filter passes and four grid builds per snapshot.
//!
//! [`PreparedTrace`] hoists the shared work out:
//!
//! * the exclusion set is materialized **once** (not once per module),
//! * each snapshot is filtered **once** into columnar `users` + `points`
//!   vectors reused by contacts, line-of-sight, and zone occupation,
//! * every [`UserId`] is interned **once** into a dense `u32` universe
//!   ([`PreparedTrace::universe`]), so downstream state machines index
//!   flat arrays instead of hashing 64-bit ids,
//! * per-snapshot proximity edges at a given range are extracted
//!   **once** ([`PreparedTrace::edges_at`]) and shared by the contact
//!   state machine and the line-of-sight graph metrics.
//!
//! Edge extraction is **delta-amortized** ([`EdgeStream`]): avatars
//! overwhelmingly stand still between consecutive τ = 10 s snapshots
//! (~90 % of observations in the bench fixture), and a join/leave/move
//! event can only toggle pairs incident to the avatar that changed. The
//! stream keeps an incremental [`GridIndex`] in sync with the snapshot
//! sequence, carries over every pair whose endpoints are bit-identical
//! to the previous snapshot, and re-tests only the changed avatars'
//! neighborhoods. The batch path synthesizes the join/leave/move deltas
//! by diffing consecutive prepared snapshots; the streaming path
//! ([`streamed_edges`]) runs the same engine over an on-disk segmented
//! store, whose reader reconstructs snapshots from the very same wire
//! delta frames (`joined`/`moved`/`left`, bit-exact position compares)
//! the diff re-derives. Both paths emit each snapshot's edges in
//! **canonical ascending order**, byte-identical to the full sweep
//! ([`PreparedTrace::edges_at_fresh`], the retained reference).

use sl_graph::{pairs_within_sorted_into, GridIndex, SweepScratch};
use sl_store::{SegmentReader, StoreError};
use sl_trace::{LandMeta, Snapshot, Trace, UserId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;

/// One snapshot, filtered and laid out column-wise: `users[i]` stood at
/// `points[i]`. Excluded users and seated sentinels are already gone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreparedSnapshot {
    /// Snapshot time, virtual seconds.
    pub t: f64,
    /// Users with usable positions, in snapshot entry order.
    pub users: Vec<UserId>,
    /// Ground-plane positions, parallel to `users`.
    pub points: Vec<(f64, f64)>,
}

impl PreparedSnapshot {
    /// Number of usable observations.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no usable observation survived the filter.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// The per-snapshot filter shared by the batch ([`PreparedTrace`]) and
/// streaming ([`prepared_windows`]) paths: drop excluded users (the
/// measuring crawler) and seated-sentinel observations, lay the rest
/// out column-wise. One filter, two execution models — the streamed
/// snapshots are byte-identical to the batch-prepared ones.
#[derive(Debug, Clone)]
pub struct SnapshotFilter {
    excluded: HashSet<UserId>,
}

impl SnapshotFilter {
    /// Build the exclusion set once.
    pub fn new(exclude: &[UserId]) -> Self {
        SnapshotFilter {
            excluded: exclude.iter().copied().collect(),
        }
    }

    /// Filter one raw snapshot into columnar form.
    pub fn filter(&self, snap: &Snapshot) -> PreparedSnapshot {
        let mut users = Vec::with_capacity(snap.entries.len());
        let mut points = Vec::with_capacity(snap.entries.len());
        for obs in &snap.entries {
            if self.excluded.contains(&obs.user) || obs.pos.is_seated_sentinel() {
                continue;
            }
            users.push(obs.user);
            points.push(obs.pos.xy());
        }
        PreparedSnapshot {
            t: snap.t,
            users,
            points,
        }
    }
}

/// Proximity edges of every snapshot at one communication range, in
/// snapshot order, stored as one flat arena (offsets + edges) instead of
/// a `Vec` per snapshot. Edges are `(i, j)` indices with `i < j` into
/// the corresponding [`PreparedSnapshot`]'s columns, in canonical
/// ascending order.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeEdges {
    /// The communication range these edges were extracted at, meters.
    pub range: f64,
    /// `offsets[k]..offsets[k + 1]` bounds snapshot `k`'s edges.
    offsets: Vec<usize>,
    /// All edges, snapshot-major.
    edges: Vec<(u32, u32)>,
}

impl RangeEdges {
    /// An edge set for zero snapshots at `range`.
    pub fn new(range: f64) -> Self {
        RangeEdges {
            range,
            offsets: vec![0],
            edges: Vec::new(),
        }
    }

    /// Append one snapshot's edge list.
    pub fn push_snapshot(&mut self, list: &[(u32, u32)]) {
        self.edges.extend_from_slice(list);
        self.offsets.push(self.edges.len());
    }

    /// Assemble from per-snapshot lists (test/bench convenience).
    pub fn from_lists(range: f64, lists: &[Vec<(u32, u32)>]) -> Self {
        let mut out = RangeEdges::new(range);
        for list in lists {
            out.push_snapshot(list);
        }
        out
    }

    /// Number of snapshots covered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no snapshot is covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot `k`'s edges, borrowed — no per-snapshot clone.
    pub fn edges_of(&self, k: usize) -> &[(u32, u32)] {
        &self.edges[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Borrowed per-snapshot edge slices, in snapshot order.
    pub fn iter(&self) -> impl Iterator<Item = &[(u32, u32)]> + '_ {
        (0..self.len()).map(move |k| self.edges_of(k))
    }

    /// Total edge count across all snapshots.
    pub fn total_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Delta-amortized proximity-edge extractor over a snapshot sequence.
///
/// Feed snapshots in order with [`EdgeStream::push`]; each call returns
/// the snapshot's proximity edges (local `(i, j)` column indices,
/// `i < j`, canonical ascending order) computed incrementally:
///
/// 1. users are interned into sticky dense ids on first sight, so the
///    engine's state lives in flat arrays;
/// 2. the snapshot is diffed against the previous one into joined /
///    left / moved deltas (a "move" is any bitwise position change);
/// 3. the incremental [`GridIndex`] is updated by relinking exactly the
///    changed avatars;
/// 4. pairs whose endpoints both stood still carry over wholesale
///    (membership is a pure function of the raw endpoint coordinates,
///    so an untouched pair cannot change); only the changed avatars'
///    grid neighborhoods are re-tested.
///
/// The output is bit-identical to a from-scratch sweep of every
/// snapshot ([`sl_graph::pairs_within_sorted`]) — property-tested, and
/// relied on by the analysis golden digest.
///
/// A malformed snapshot listing the same user twice makes the dense
/// bookkeeping ambiguous; the stream detects this and degrades
/// permanently to the per-snapshot sweep, preserving exact outputs.
#[derive(Debug)]
pub struct EdgeStream {
    range: f64,
    /// Sticky dense id per user ever seen (streaming interner).
    ids: HashMap<UserId, u32>,
    grid: GridIndex,
    /// Per dense id: present in the latest pushed snapshot.
    present: Vec<bool>,
    /// Per dense id: position in the latest pushed snapshot.
    pos: Vec<(f64, f64)>,
    /// Stamp arrays (epoch = push counter), sized to the id universe.
    member_stamp: Vec<u32>,
    changed_stamp: Vec<u32>,
    /// Per dense id: local column index in the current snapshot.
    local_of: Vec<u32>,
    epoch: u32,
    /// Dense ids present in the previous snapshot.
    prev_members: Vec<u32>,
    /// Current in-range pairs as packed dense keys; ascending iff
    /// `cur_sorted` (the dense-movement fast path defers sorting until
    /// a carry/merge step actually needs it).
    cur: Vec<u64>,
    cur_sorted: bool,
    carry: Vec<u64>,
    added: Vec<u64>,
    changed_present: Vec<u32>,
    ids_buf: Vec<u32>,
    out: Vec<(u32, u32)>,
    sweep: SweepScratch,
    /// Duplicate user seen: per-push sweep from here on.
    degraded: bool,
}

fn pack(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

impl EdgeStream {
    /// A stream extracting edges at communication range `range`.
    pub fn new(range: f64) -> Self {
        EdgeStream {
            range,
            ids: HashMap::new(),
            grid: GridIndex::with_radius(range),
            present: Vec::new(),
            pos: Vec::new(),
            member_stamp: Vec::new(),
            changed_stamp: Vec::new(),
            local_of: Vec::new(),
            epoch: 0,
            prev_members: Vec::new(),
            cur: Vec::new(),
            cur_sorted: true,
            carry: Vec::new(),
            added: Vec::new(),
            changed_present: Vec::new(),
            ids_buf: Vec::new(),
            out: Vec::new(),
            sweep: SweepScratch::default(),
            degraded: false,
        }
    }

    /// The range this stream extracts at.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Push the next snapshot; returns its edges, borrowed until the
    /// next push.
    pub fn push(&mut self, snap: &PreparedSnapshot) -> &[(u32, u32)] {
        if self.degraded {
            return self.sweep_only(&snap.points);
        }
        let mut ids_buf = std::mem::take(&mut self.ids_buf);
        ids_buf.clear();
        let next_id = self.ids.len() as u32;
        let mut fresh = next_id;
        for &u in &snap.users {
            let d = *self.ids.entry(u).or_insert_with(|| {
                let d = fresh;
                fresh += 1;
                d
            });
            ids_buf.push(d);
        }
        let out = self.push_ids(&snap.points, &ids_buf);
        // Borrow gymnastics: `out` borrows self, so stash the buffer
        // back through a raw length check instead of holding both.
        let n = out.len();
        self.ids_buf = ids_buf;
        &self.out[..n]
    }

    /// Degraded path: full sweep of this snapshot, no incremental state.
    fn sweep_only(&mut self, points: &[(f64, f64)]) -> &[(u32, u32)] {
        pairs_within_sorted_into(points, self.range, &mut self.sweep, &mut self.out);
        &self.out
    }

    fn ensure_capacity(&mut self, n_ids: usize) {
        if self.present.len() < n_ids {
            self.present.resize(n_ids, false);
            self.pos.resize(n_ids, (0.0, 0.0));
            self.member_stamp.resize(n_ids, 0);
            self.changed_stamp.resize(n_ids, 0);
            self.local_of.resize(n_ids, 0);
        }
    }

    /// Core incremental step over pre-interned dense ids (`ids[i]` is
    /// the dense id of column `i`; any injective assignment works).
    fn push_ids(&mut self, points: &[(f64, f64)], ids: &[u32]) -> &[(u32, u32)] {
        debug_assert_eq!(points.len(), ids.len());
        if self.degraded {
            return self.sweep_only(points);
        }
        if self.epoch == u32::MAX {
            self.member_stamp.fill(0);
            self.changed_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let max_id = ids.iter().copied().max().map_or(0, |m| m as usize + 1);
        self.ensure_capacity(max_id);

        // Stamp membership; a repeated dense id means a duplicate user
        // entry in this snapshot — bail to the exact sweep, permanently.
        for (i, &d) in ids.iter().enumerate() {
            let d = d as usize;
            if self.member_stamp[d] == epoch {
                self.degraded = true;
                self.prev_members.clear();
                self.cur.clear();
                self.cur_sorted = true;
                return self.sweep_only(points);
            }
            self.member_stamp[d] = epoch;
            self.local_of[d] = i as u32;
        }

        // Departures first (frees grid buckets before arrivals).
        let mut any_left = false;
        for i in 0..self.prev_members.len() {
            let p = self.prev_members[i];
            if self.member_stamp[p as usize] != epoch {
                self.grid.remove(p);
                self.present[p as usize] = false;
                self.changed_stamp[p as usize] = epoch;
                any_left = true;
            }
        }
        // Arrivals and moves ("moved" = any bitwise coordinate change,
        // matching the wire delta encoder's position compare).
        self.changed_present.clear();
        for (i, &d) in ids.iter().enumerate() {
            let du = d as usize;
            let pt = points[i];
            if !self.present[du] {
                self.grid.insert(d, pt);
                self.present[du] = true;
                self.pos[du] = pt;
                self.changed_stamp[du] = epoch;
                self.changed_present.push(d);
            } else if self.pos[du].0.to_bits() != pt.0.to_bits()
                || self.pos[du].1.to_bits() != pt.1.to_bits()
            {
                self.grid.move_point(d, pt);
                self.pos[du] = pt;
                self.changed_stamp[du] = epoch;
                self.changed_present.push(d);
            }
        }

        if self.changed_present.len() * 2 >= ids.len() && !ids.is_empty() {
            // Dense-movement fast path: when at least half the present
            // avatars changed, the carried set is small and per-avatar
            // re-queries would test most surviving pairs from both
            // endpoints — one cell-ordered pass over the (already
            // updated) grid is cheaper. The pair set is identical
            // either way: membership is a pure function of positions
            // and range.
            let (grid, cur) = (&self.grid, &mut self.cur);
            cur.clear();
            grid.for_each_pair_within(|lo, hi| cur.push(pack(lo, hi)));
            self.cur_sorted = false;
        } else if any_left || !self.changed_present.is_empty() {
            if !self.cur_sorted {
                self.cur.sort_unstable();
                self.cur_sorted = true;
            }
            // Carry over pairs with both endpoints untouched: their
            // membership is a pure function of unchanged bits. `cur` is
            // sorted, and filtering preserves that.
            self.carry.clear();
            for &key in &self.cur {
                let (lo, hi) = ((key >> 32) as usize, (key as u32) as usize);
                if self.changed_stamp[lo] != epoch && self.changed_stamp[hi] != epoch {
                    self.carry.push(key);
                }
            }
            // Re-test only the changed avatars' neighborhoods. A pair
            // of two changed avatars is found by both queries; keep the
            // copy found by the larger id so each pair lands once.
            self.added.clear();
            let (grid, changed_stamp, added) = (&self.grid, &self.changed_stamp, &mut self.added);
            for &d in &self.changed_present {
                let pt = self.pos[d as usize];
                grid.for_each_within(pt, |o| {
                    if o == d || (changed_stamp[o as usize] == epoch && o < d) {
                        return;
                    }
                    added.push(pack(d, o));
                });
            }
            self.added.sort_unstable();
            // Merge (disjoint: carried pairs have no changed endpoint,
            // added pairs have at least one).
            self.cur.clear();
            let (mut a, mut b) = (0, 0);
            while a < self.carry.len() && b < self.added.len() {
                if self.carry[a] < self.added[b] {
                    self.cur.push(self.carry[a]);
                    a += 1;
                } else {
                    self.cur.push(self.added[b]);
                    b += 1;
                }
            }
            self.cur.extend_from_slice(&self.carry[a..]);
            self.cur.extend_from_slice(&self.added[b..]);
        }

        self.prev_members.clear();
        self.prev_members.extend_from_slice(ids);

        // Emit in local column indices, canonical ascending order.
        self.out.clear();
        for &key in &self.cur {
            let (lo, hi) = ((key >> 32) as u32, key as u32);
            let (a, b) = (self.local_of[lo as usize], self.local_of[hi as usize]);
            self.out.push(if a < b { (a, b) } else { (b, a) });
        }
        self.out.sort_unstable();
        &self.out
    }
}

/// A trace prepared for analysis: filtered columnar snapshots plus the
/// trace it came from (for metadata and modules that need raw access).
#[derive(Debug)]
pub struct PreparedTrace<'a> {
    /// The underlying trace (metadata, gaps, raw snapshots).
    pub trace: &'a Trace,
    /// The exclusion set, built once for the whole analysis.
    pub excluded: HashSet<UserId>,
    /// Filtered snapshots, in trace order.
    pub snapshots: Vec<PreparedSnapshot>,
    /// Every user ever observed (post-filter), ascending — the dense
    /// id universe: user `universe[d]` has dense id `d`.
    pub universe: Vec<UserId>,
    /// Per snapshot: dense id of `users[i]`, parallel to `users`.
    pub dense: Vec<Vec<u32>>,
    /// Some snapshot listed the same user twice (malformed input);
    /// dense bookkeeping is ambiguous, so delta extraction falls back
    /// to the exact per-snapshot sweep.
    pub has_duplicate_users: bool,
}

impl<'a> PreparedTrace<'a> {
    /// Filter `trace` once: drop `exclude`d users (the measuring
    /// crawler) and seated-sentinel observations from every snapshot,
    /// then intern every surviving user into the dense universe.
    pub fn new(trace: &'a Trace, exclude: &[UserId]) -> Self {
        let filter = SnapshotFilter::new(exclude);
        let snapshots = sl_par::par_map(&trace.snapshots, |_, snap| filter.filter(snap));
        let mut universe: Vec<UserId> = snapshots
            .iter()
            .flat_map(|s| s.users.iter().copied())
            .collect();
        universe.sort_unstable();
        universe.dedup();
        let per_snap = sl_par::par_map(&snapshots, |_, snap| {
            let row: Vec<u32> = snap
                .users
                .iter()
                .map(|u| universe.binary_search(u).expect("interned") as u32)
                .collect();
            let mut sorted = row.clone();
            sorted.sort_unstable();
            let dup = sorted.windows(2).any(|w| w[0] == w[1]);
            (row, dup)
        });
        let has_duplicate_users = per_snap.iter().any(|(_, dup)| *dup);
        let dense = per_snap.into_iter().map(|(row, _)| row).collect();
        PreparedTrace {
            trace,
            excluded: filter.excluded,
            snapshots,
            universe,
            dense,
            has_duplicate_users,
        }
    }

    /// Snapshot interval τ of the underlying trace.
    pub fn tau(&self) -> f64 {
        self.trace.meta.tau
    }

    /// Extract the proximity edges of every snapshot at `range` with
    /// the delta-amortized [`EdgeStream`] — shared downstream by the
    /// contact extractor and the line-of-sight metrics. Byte-identical
    /// to [`PreparedTrace::edges_at_fresh`].
    pub fn edges_at(&self, range: f64) -> RangeEdges {
        if self.has_duplicate_users {
            return self.edges_at_fresh(range);
        }
        let mut stream = EdgeStream::new(range);
        let mut out = RangeEdges::new(range);
        for (snap, dense) in self.snapshots.iter().zip(&self.dense) {
            let edges = stream.push_ids(&snap.points, dense);
            out.edges.extend_from_slice(edges);
            out.offsets.push(out.edges.len());
        }
        out
    }

    /// Reference edge extraction: an independent from-scratch sweep of
    /// every snapshot (parallel over snapshots). Retained as the oracle
    /// the delta path is property-tested against.
    pub fn edges_at_fresh(&self, range: f64) -> RangeEdges {
        let lists = sl_par::par_map_with(
            &self.snapshots,
            || (SweepScratch::default(), Vec::new()),
            |(scratch, buf), _, snap| {
                pairs_within_sorted_into(&snap.points, range, scratch, buf);
                buf.clone()
            },
        );
        RangeEdges::from_lists(range, &lists)
    }
}

/// Streaming preparation over an on-disk [`sl_store`] segmented store:
/// windows of filtered columnar snapshots, never the whole trace. Peak
/// RSS is bounded by `window` snapshots regardless of trace length —
/// the store-backed counterpart of [`PreparedTrace::new`], using the
/// very same [`SnapshotFilter`], so each streamed snapshot is
/// byte-identical to its batch-prepared twin.
pub struct PreparedWindows {
    meta: LandMeta,
    filter: SnapshotFilter,
    windows: sl_store::Windows,
}

impl PreparedWindows {
    /// Land metadata from the store manifest.
    pub fn meta(&self) -> &LandMeta {
        &self.meta
    }
}

impl Iterator for PreparedWindows {
    type Item = Result<Vec<PreparedSnapshot>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        let window = match self.windows.next()? {
            Ok(w) => w,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(window
            .snapshots
            .iter()
            .map(|s| self.filter.filter(s))
            .collect()))
    }
}

/// Open a store for streaming analysis: iterate windows of at most
/// `window` prepared snapshots (gap records are skipped — coverage
/// accounting needs the raw store, not the filtered stream).
pub fn prepared_windows(
    dir: &Path,
    exclude: &[UserId],
    window: usize,
) -> Result<PreparedWindows, StoreError> {
    let reader = SegmentReader::open(dir)?;
    Ok(PreparedWindows {
        meta: reader.meta().clone(),
        filter: SnapshotFilter::new(exclude),
        windows: reader.windows(window),
    })
}

/// Streaming edge extraction over an on-disk store: each item is one
/// prepared snapshot plus its proximity edges, produced by the same
/// delta-amortized [`EdgeStream`] as the batch path. The store reader
/// reconstructs snapshots from the wire delta frames; since a frame's
/// `moved` set is exactly the set of bitwise position changes, the
/// stream's synthesized deltas match the wire deltas event for event,
/// and the emitted edges are byte-identical to batch
/// [`PreparedTrace::edges_at`] over the same trace.
pub struct StreamedEdges {
    windows: PreparedWindows,
    stream: EdgeStream,
    pending: VecDeque<PreparedSnapshot>,
}

impl StreamedEdges {
    /// Land metadata from the store manifest.
    pub fn meta(&self) -> &LandMeta {
        self.windows.meta()
    }
}

impl Iterator for StreamedEdges {
    type Item = Result<(PreparedSnapshot, Vec<(u32, u32)>), StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(snap) = self.pending.pop_front() {
                let edges = self.stream.push(&snap).to_vec();
                return Some(Ok((snap, edges)));
            }
            match self.windows.next()? {
                Ok(w) => self.pending.extend(w),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Open a store for streaming edge extraction at `range`, windowed by
/// `window` snapshots of read-ahead.
pub fn streamed_edges(
    dir: &Path,
    exclude: &[UserId],
    range: f64,
    window: usize,
) -> Result<StreamedEdges, StoreError> {
    Ok(StreamedEdges {
        windows: prepared_windows(dir, exclude, window)?,
        stream: EdgeStream::new(range),
        pending: VecDeque::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_graph::pairs_within_sorted;
    use sl_trace::Position;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(LandMeta::standard("P", 10.0));
        for k in 1..=5i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            s.push(UserId(1), Position::new(10.0 + k as f64, 20.0, 22.0));
            s.push(UserId(2), Position::new(12.0, 20.0, 22.0));
            s.push(UserId(7), Position::SEATED);
            s.push(UserId(9), Position::new(100.0, 100.0, 22.0));
            t.push(s);
        }
        t
    }

    #[test]
    fn filters_excluded_and_seated_once() {
        let t = sample_trace();
        let prep = PreparedTrace::new(&t, &[UserId(9)]);
        assert_eq!(prep.snapshots.len(), 5);
        for snap in &prep.snapshots {
            assert_eq!(snap.users, vec![UserId(1), UserId(2)]);
            assert_eq!(snap.len(), snap.points.len());
            assert!(!snap.is_empty());
        }
        assert!(prep.excluded.contains(&UserId(9)));
        assert_eq!(prep.tau(), 10.0);
    }

    #[test]
    fn interns_universe_and_dense_ids() {
        let t = sample_trace();
        let prep = PreparedTrace::new(&t, &[UserId(9)]);
        assert_eq!(prep.universe, vec![UserId(1), UserId(2)]);
        assert!(!prep.has_duplicate_users);
        for (snap, dense) in prep.snapshots.iter().zip(&prep.dense) {
            assert_eq!(dense.len(), snap.len());
            for (u, &d) in snap.users.iter().zip(dense) {
                assert_eq!(prep.universe[d as usize], *u);
            }
        }
    }

    #[test]
    fn edges_match_direct_extraction() {
        let t = sample_trace();
        let prep = PreparedTrace::new(&t, &[]);
        for range in [10.0, 80.0] {
            let edges = prep.edges_at(range);
            assert_eq!(edges.range, range);
            assert_eq!(edges.len(), prep.snapshots.len());
            for (k, snap) in prep.snapshots.iter().enumerate() {
                assert_eq!(edges.edges_of(k), pairs_within_sorted(&snap.points, range));
            }
        }
    }

    #[test]
    fn delta_path_matches_fresh_sweep() {
        // A trace with churn: users join, leave, move, and stand still.
        let mut t = Trace::new(LandMeta::standard("P", 10.0));
        let mut rng = 0x243F_6A88_85A3_08D3u64;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for k in 1..=40i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            for u in 0..20u32 {
                let r = step();
                if r % 5 == 0 {
                    continue; // absent this snapshot
                }
                // Half the time stand exactly still, else move.
                let jitter = if r % 2 == 0 { 0.0 } else { (r % 97) as f64 };
                s.push(
                    UserId(u),
                    Position::new(5.0 * u as f64 + jitter, (r % 31) as f64, 22.0),
                );
            }
            t.push(s);
        }
        let prep = PreparedTrace::new(&t, &[]);
        for range in [10.0, 80.0] {
            assert_eq!(prep.edges_at(range), prep.edges_at_fresh(range));
        }
    }

    #[test]
    fn duplicate_user_snapshot_degrades_exactly() {
        let mut t = Trace::new(LandMeta::standard("P", 10.0));
        for k in 1..=4i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            s.push(UserId(1), Position::new(0.0, 0.0, 22.0));
            s.push(UserId(2), Position::new(5.0, 0.0, 22.0));
            if k == 2 {
                // Malformed: user 1 listed twice.
                s.push(UserId(1), Position::new(7.0, 0.0, 22.0));
            }
            t.push(s);
        }
        let prep = PreparedTrace::new(&t, &[]);
        assert!(prep.has_duplicate_users);
        assert_eq!(prep.edges_at(10.0), prep.edges_at_fresh(10.0));
    }

    #[test]
    fn edge_stream_self_interns_like_batch() {
        let t = sample_trace();
        let prep = PreparedTrace::new(&t, &[UserId(9)]);
        let batch = prep.edges_at(80.0);
        let mut stream = EdgeStream::new(80.0);
        for (k, snap) in prep.snapshots.iter().enumerate() {
            assert_eq!(stream.push(snap), batch.edges_of(k), "snapshot {k}");
        }
        assert_eq!(stream.range(), 80.0);
    }

    #[test]
    fn serial_and_parallel_prep_identical() {
        let t = sample_trace();
        let serial = sl_par::with_threads(1, || {
            let p = PreparedTrace::new(&t, &[UserId(9)]);
            (p.edges_at(80.0), p.edges_at_fresh(80.0), p.snapshots)
        });
        let parallel = sl_par::with_threads(4, || {
            let p = PreparedTrace::new(&t, &[UserId(9)]);
            (p.edges_at(80.0), p.edges_at_fresh(80.0), p.snapshots)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_trace_prepares_empty() {
        let t = Trace::new(LandMeta::standard("P", 10.0));
        let prep = PreparedTrace::new(&t, &[]);
        assert!(prep.snapshots.is_empty());
        assert!(prep.universe.is_empty());
        assert!(prep.edges_at(10.0).is_empty());
        assert_eq!(prep.edges_at(10.0).total_edges(), 0);
    }
}
