//! # sl-analysis
//!
//! The paper's measurement methodology (§3), applied to traces:
//!
//! * [`contacts`] — temporal analysis: contact time (CT), inter-contact
//!   time (ICT) and first-contact time (FT) extraction at a given
//!   communication range (Fig. 1);
//! * [`los`] — line-of-sight network analysis: aggregated node degree,
//!   per-snapshot diameter of the largest connected component, and mean
//!   clustering coefficient (Fig. 2);
//! * [`spatial`] — zone occupation over L × L cells (Fig. 3);
//! * [`trips`] — trip analysis: travel length, effective travel time
//!   and travel (login) time (Fig. 4);
//! * [`report`] — figure assembly, CSV export and ASCII rendering;
//! * [`prep`] — the shared one-pass preparation stage: every metric
//!   family consumes one [`prep::PreparedTrace`] (filtered columnar
//!   snapshots + per-range proximity edges) instead of re-filtering and
//!   re-indexing the raw trace on its own — plus
//!   [`prep::prepared_windows`], the [`sl_store`]-backed streaming
//!   variant that bounds peak RSS by the window size instead of the
//!   trace length;
//! * [`pipeline`] — one-call per-land analysis producing every figure;
//!   the per-snapshot work fans out over [`sl_par`] worker threads with
//!   a deterministic, index-ordered reduction;
//! * [`coverage`] — per-interval expected-vs-observed snapshot
//!   accounting, flagging windows where the crawler was too blind for
//!   its metrics to mean anything.
//!
//! Beyond the paper (its stated future work, implemented here):
//!
//! * [`relations`] — the acquaintance ("relation") graph with per-pair
//!   contact frequency and strength;
//! * [`mod@mobility_metrics`] — radius of gyration, jump lengths, pause
//!   durations, visitation rank/frequency.

#![warn(missing_docs)]

pub mod contacts;
pub mod coverage;
pub mod los;
pub mod mobility_metrics;
pub mod pipeline;
pub mod prep;
pub mod relations;
pub mod report;
pub mod spatial;
pub mod trips;

pub use contacts::{
    extract_contacts, extract_contacts_prepared, extract_contacts_prepared_reference,
    ContactSamples,
};
pub use coverage::{coverage_report, covered_only, CoverageReport, IntervalCoverage};
pub use los::{los_metrics, los_metrics_prepared, los_metrics_prepared_reference, LosMetrics};
pub use mobility_metrics::{mobility_metrics, MobilityMetrics};
pub use pipeline::{analyze_land, paper_figures, LandAnalysis};
pub use prep::{
    prepared_windows, streamed_edges, EdgeStream, PreparedSnapshot, PreparedTrace, PreparedWindows,
    RangeEdges, SnapshotFilter, StreamedEdges,
};
pub use relations::{RelationEdge, RelationGraph};
pub use report::{Figure, FigureSet};
pub use spatial::{
    zone_occupation, zone_occupation_prepared, zone_occupation_streaming, ZoneAccumulator,
    ZoneOccupation,
};
pub use trips::{trip_metrics, trip_metrics_excluding, TripMetrics};
