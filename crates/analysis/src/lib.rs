//! # sl-analysis
//!
//! The paper's measurement methodology (§3), applied to traces:
//!
//! * [`contacts`] — temporal analysis: contact time (CT), inter-contact
//!   time (ICT) and first-contact time (FT) extraction at a given
//!   communication range (Fig. 1);
//! * [`los`] — line-of-sight network analysis: aggregated node degree,
//!   per-snapshot diameter of the largest connected component, and mean
//!   clustering coefficient (Fig. 2);
//! * [`spatial`] — zone occupation over L × L cells (Fig. 3);
//! * [`trips`] — trip analysis: travel length, effective travel time
//!   and travel (login) time (Fig. 4);
//! * [`report`] — figure assembly, CSV export and ASCII rendering;
//! * [`pipeline`] — one-call per-land analysis producing every figure;
//! * [`coverage`] — per-interval expected-vs-observed snapshot
//!   accounting, flagging windows where the crawler was too blind for
//!   its metrics to mean anything.
//!
//! Beyond the paper (its stated future work, implemented here):
//!
//! * [`relations`] — the acquaintance ("relation") graph with per-pair
//!   contact frequency and strength;
//! * [`mod@mobility_metrics`] — radius of gyration, jump lengths, pause
//!   durations, visitation rank/frequency.

#![warn(missing_docs)]

pub mod contacts;
pub mod coverage;
pub mod los;
pub mod mobility_metrics;
pub mod pipeline;
pub mod relations;
pub mod report;
pub mod spatial;
pub mod trips;

pub use contacts::{extract_contacts, ContactSamples};
pub use coverage::{coverage_report, covered_only, CoverageReport, IntervalCoverage};
pub use los::{los_metrics, LosMetrics};
pub use mobility_metrics::{mobility_metrics, MobilityMetrics};
pub use pipeline::{analyze_land, LandAnalysis};
pub use relations::{RelationEdge, RelationGraph};
pub use report::{Figure, FigureSet};
pub use spatial::{zone_occupation, ZoneOccupation};
pub use trips::{trip_metrics, TripMetrics};
