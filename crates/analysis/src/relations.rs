//! The relation graph — the paper's future work, implemented.
//!
//! §5: "Another interesting area of future research would be to build
//! the network of 'relationships' among SL users. Based on the
//! 'relation graph', new questions can be addressed such as the
//! frequency and the strength of contact between acquaintances."
//!
//! Definition used here: users become *acquainted* after meeting at
//! least `min_contacts` separate times for a cumulative
//! `min_total_time` seconds within range `r`. Each acquaintance edge
//! carries its contact *frequency* (number of distinct contact
//! episodes) and *strength* (total time in contact).

use crate::prep::PreparedTrace;
use serde::{Deserialize, Serialize};
use sl_graph::Graph;
use sl_trace::{Trace, UserId};
use std::collections::HashMap;

/// One pair's aggregated contact history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationEdge {
    /// Lower user id of the pair.
    pub a: UserId,
    /// Higher user id of the pair.
    pub b: UserId,
    /// Number of distinct contact episodes ("frequency of contact").
    pub contacts: u32,
    /// Cumulative contact time, seconds ("strength of contact").
    pub total_time: f64,
    /// Time of the first meeting.
    pub first_met: f64,
    /// Time of the last meeting.
    pub last_met: f64,
}

/// The aggregated relation graph of a trace.
///
/// ```
/// use sl_analysis::relations::RelationGraph;
/// use sl_world::presets::dance_island;
/// use sl_world::World;
///
/// let mut world = World::new(dance_island().config, 7);
/// world.warm_up(3600.0);
/// let trace = world.run_trace(3600.0, 10.0);
/// // Acquaintance: met >= 2 times for >= 60 s in Bluetooth range.
/// let rel = RelationGraph::from_trace(&trace, 10.0, 2, 60.0, &[]);
/// assert!(rel.edge_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationGraph {
    /// Communication range used to define contact.
    pub range: f64,
    /// Acquaintance threshold: minimum contact episodes.
    pub min_contacts: u32,
    /// Acquaintance threshold: minimum cumulative contact seconds.
    pub min_total_time: f64,
    /// All users that appear in at least one edge-qualifying contact,
    /// sorted. Vertex `i` of [`RelationGraph::topology`] is `users[i]`.
    pub users: Vec<UserId>,
    /// Acquaintance edges (pairs meeting the thresholds).
    pub edges: Vec<RelationEdge>,
}

impl RelationGraph {
    /// Build from a trace. Pairs that never meet the thresholds do not
    /// appear; `exclude`d users (the crawler) are invisible.
    pub fn from_trace(
        trace: &Trace,
        range: f64,
        min_contacts: u32,
        min_total_time: f64,
        exclude: &[UserId],
    ) -> Self {
        let prep = PreparedTrace::new(trace, exclude);
        let range_edges = prep.edges_at(range);
        let tau = trace.meta.tau;

        // Aggregate per-pair episode counts and total contact time over
        // the shared delta-amortized edge extraction, with pairs keyed
        // by their packed dense ids — the same sampled-contact
        // semantics the temporal analysis uses: an episode continues
        // exactly while the pair is in range at consecutive snapshots.
        struct PairAgg {
            contacts: u32,
            total_time: f64,
            first_met: f64,
            last_met: f64,
            /// Snapshot index last seen in range; `u32::MAX` = never.
            last_seen: u32,
        }
        let mut pairs: HashMap<u64, PairAgg> = HashMap::new();

        for (k, snap) in prep.snapshots.iter().enumerate() {
            let dense = &prep.dense[k];
            for &(i, j) in range_edges.edges_of(k) {
                let (a, b) = (dense[i as usize], dense[j as usize]);
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let key = ((lo as u64) << 32) | hi as u64;
                let agg = pairs.entry(key).or_insert(PairAgg {
                    contacts: 0,
                    total_time: 0.0,
                    first_met: snap.t,
                    last_met: snap.t,
                    last_seen: u32::MAX,
                });
                if agg.last_seen == k as u32 {
                    // Repeated edge key within one snapshot (malformed
                    // duplicate user entries) — counts once, as the old
                    // hash-set path deduped implicitly.
                    continue;
                }
                let continuing = agg.last_seen != u32::MAX && agg.last_seen as usize + 1 == k;
                if !continuing {
                    agg.contacts += 1;
                }
                agg.total_time += tau;
                agg.last_met = snap.t;
                agg.last_seen = k as u32;
            }
        }

        let mut edges: Vec<RelationEdge> = pairs
            .into_iter()
            .filter(|(_, agg)| agg.contacts >= min_contacts && agg.total_time >= min_total_time)
            .map(|(key, agg)| RelationEdge {
                a: prep.universe[(key >> 32) as usize],
                b: prep.universe[(key as u32) as usize],
                contacts: agg.contacts,
                total_time: agg.total_time,
                first_met: agg.first_met,
                last_met: agg.last_met,
            })
            .collect();
        edges.sort_by_key(|e| (e.a, e.b));

        let mut users: Vec<UserId> = edges.iter().flat_map(|e| [e.a, e.b]).collect();
        users.sort_unstable();
        users.dedup();

        RelationGraph {
            range,
            min_contacts,
            min_total_time,
            users,
            edges,
        }
    }

    /// Number of acquaintance edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of users with at least one acquaintance.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Per-user acquaintance counts ("social degree").
    pub fn acquaintance_degrees(&self) -> Vec<f64> {
        let mut counts: HashMap<UserId, u32> = HashMap::new();
        for e in &self.edges {
            *counts.entry(e.a).or_insert(0) += 1;
            *counts.entry(e.b).or_insert(0) += 1;
        }
        let mut out: Vec<f64> = self
            .users
            .iter()
            .map(|u| *counts.get(u).unwrap_or(&0) as f64)
            .collect();
        out.sort_by(|x, y| x.partial_cmp(y).unwrap());
        out
    }

    /// Edge strengths (total contact seconds), sorted ascending.
    pub fn strengths(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self.edges.iter().map(|e| e.total_time).collect();
        out.sort_by(|x, y| x.partial_cmp(y).unwrap());
        out
    }

    /// Edge frequencies (contact episodes), sorted ascending.
    pub fn frequencies(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self.edges.iter().map(|e| e.contacts as f64).collect();
        out.sort_by(|x, y| x.partial_cmp(y).unwrap());
        out
    }

    /// Project onto an unweighted [`Graph`] (vertex `i` = `users[i]`)
    /// for topological analysis (clustering, components).
    pub fn topology(&self) -> Graph {
        let index: HashMap<UserId, u32> = self
            .users
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, i as u32))
            .collect();
        let edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| (index[&e.a], index[&e.b]))
            .collect();
        Graph::from_edges(self.users.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot};

    /// Schedule: per snapshot, the (user, x) entries; y = 0, tau = 10.
    fn trace_of(schedule: &[&[(u32, f64)]]) -> Trace {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for (k, entries) in schedule.iter().enumerate() {
            let mut s = Snapshot::new((k as f64 + 1.0) * 10.0);
            for &(u, x) in *entries {
                s.push(UserId(u), Position::new(x, 0.0, 22.0));
            }
            t.push(s);
        }
        t
    }

    #[test]
    fn repeated_meetings_become_acquaintance() {
        // Users 1,2 meet twice (episodes separated by an apart phase);
        // users 1,3 brush once.
        let t = trace_of(&[
            &[(1, 0.0), (2, 5.0), (3, 100.0)],
            &[(1, 0.0), (2, 5.0), (3, 100.0)],
            &[(1, 0.0), (2, 50.0), (3, 5.0)],
            &[(1, 0.0), (2, 5.0), (3, 100.0)],
            &[(1, 0.0), (2, 5.0), (3, 100.0)],
        ]);
        let rel = RelationGraph::from_trace(&t, 10.0, 2, 0.0, &[]);
        assert_eq!(rel.edge_count(), 1, "only the (1,2) pair met twice");
        let e = &rel.edges[0];
        assert_eq!((e.a, e.b), (UserId(1), UserId(2)));
        assert_eq!(e.contacts, 2);
        assert_eq!(e.total_time, 40.0, "4 in-contact snapshots x tau");
        assert_eq!(e.first_met, 10.0);
        assert_eq!(e.last_met, 50.0);
        assert_eq!(rel.users, vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn strength_threshold_filters() {
        let t = trace_of(&[&[(1, 0.0), (2, 5.0)], &[(1, 0.0), (2, 5.0)]]);
        let strict = RelationGraph::from_trace(&t, 10.0, 1, 30.0, &[]);
        assert_eq!(strict.edge_count(), 0, "20 s < 30 s threshold");
        let loose = RelationGraph::from_trace(&t, 10.0, 1, 20.0, &[]);
        assert_eq!(loose.edge_count(), 1);
    }

    #[test]
    fn excluded_users_form_no_relations() {
        let t = trace_of(&[
            &[(1, 0.0), (9, 5.0)],
            &[(1, 0.0), (9, 5.0)],
            &[(1, 0.0), (9, 5.0)],
        ]);
        let rel = RelationGraph::from_trace(&t, 10.0, 1, 0.0, &[UserId(9)]);
        assert_eq!(rel.edge_count(), 0);
    }

    #[test]
    fn degrees_and_strengths_consistent() {
        // A triangle of mutual acquaintances: 1-2, 2-3, 1-3.
        let t = trace_of(&[
            &[(1, 0.0), (2, 5.0), (3, 9.0)],
            &[(1, 0.0), (2, 5.0), (3, 9.0)],
        ]);
        let rel = RelationGraph::from_trace(&t, 10.0, 1, 0.0, &[]);
        assert_eq!(rel.edge_count(), 3);
        assert_eq!(rel.acquaintance_degrees(), vec![2.0, 2.0, 2.0]);
        assert_eq!(rel.strengths().len(), 3);
        assert_eq!(rel.frequencies(), vec![1.0, 1.0, 1.0]);
        let g = rel.topology();
        assert_eq!(sl_graph::mean_clustering(&g), Some(1.0));
    }

    #[test]
    fn empty_trace_empty_graph() {
        let t = Trace::new(LandMeta::standard("T", 10.0));
        let rel = RelationGraph::from_trace(&t, 10.0, 1, 0.0, &[]);
        assert_eq!(rel.edge_count(), 0);
        assert_eq!(rel.user_count(), 0);
        assert_eq!(rel.topology().len(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let t = trace_of(&[&[(1, 0.0), (2, 5.0)], &[(1, 0.0), (2, 5.0)]]);
        let rel = RelationGraph::from_trace(&t, 10.0, 1, 0.0, &[]);
        let json = serde_json::to_string(&rel).unwrap();
        let back: RelationGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(rel, back);
    }
}
