//! Extended human-mobility metrics — the paper's other future-work
//! thread ("further study in the specification of new metrics to
//! define human mobility are required"). These are the metrics the
//! post-2008 literature converged on for comparing mobility processes:
//!
//! * **radius of gyration** per session (González et al. 2008);
//! * **jump lengths** — displacement between consecutive snapshots
//!   while moving;
//! * **pause durations** — maximal runs of standing still;
//! * **visitation frequency** — rank/frequency of the cells a user
//!   visits (Zipf-like for humans).

use serde::{Deserialize, Serialize};
use sl_trace::{extract_sessions, Trace, UserId};
use std::collections::{HashMap, HashSet};

/// Displacement below this (meters) between consecutive snapshots
/// counts as standing still.
pub const STILL_EPSILON: f64 = 0.5;

/// The extended metric set for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityMetrics {
    /// Radius of gyration per session, meters.
    pub radii_of_gyration: Vec<f64>,
    /// Per-step displacements while moving, meters.
    pub jump_lengths: Vec<f64>,
    /// Still-run durations, seconds.
    pub pause_durations: Vec<f64>,
    /// Aggregated visitation rank curve: `visit_rank_frequency[k]` is
    /// the mean fraction of a user's observations spent at their
    /// (k+1)-th most visited cell (computed over users with at least
    /// two visited cells).
    pub visit_rank_frequency: Vec<f64>,
}

/// Radius of gyration of a point set: RMS distance to the centroid.
pub fn radius_of_gyration(points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let n = points.len() as f64;
    let (cx, cy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (cx, cy) = (cx / n, cy / n);
    let ms = points
        .iter()
        .map(|&(x, y)| {
            let (dx, dy) = (x - cx, y - cy);
            dx * dx + dy * dy
        })
        .sum::<f64>()
        / n;
    ms.sqrt()
}

/// Compute the extended metrics. `cell` is the visitation-grid cell
/// side (meters); `exclude`d users and seated observations are skipped.
pub fn mobility_metrics(trace: &Trace, cell: f64, exclude: &[UserId]) -> MobilityMetrics {
    assert!(cell > 0.0, "cell side must be positive");
    let excluded: HashSet<UserId> = exclude.iter().copied().collect();
    let mut out = MobilityMetrics::default();

    // Per-user visitation counts.
    let mut visits: HashMap<UserId, HashMap<(i64, i64), u64>> = HashMap::new();

    for session in extract_sessions(trace, crate::trips::SESSION_GAP_TOLERANCE) {
        if excluded.contains(&session.user) {
            continue;
        }
        let path: Vec<(f64, (f64, f64))> = session
            .path
            .iter()
            .filter(|(_, p)| !p.is_seated_sentinel())
            .map(|&(t, p)| (t, p.xy()))
            .collect();
        if path.is_empty() {
            continue;
        }
        let points: Vec<(f64, f64)> = path.iter().map(|&(_, p)| p).collect();
        out.radii_of_gyration.push(radius_of_gyration(&points));

        // Jumps and pauses.
        let mut pause_start: Option<f64> = None;
        for w in path.windows(2) {
            let ((t0, (x0, y0)), (t1, (x1, y1))) = (w[0], w[1]);
            let d = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
            if d > STILL_EPSILON {
                out.jump_lengths.push(d);
                if let Some(ps) = pause_start.take() {
                    out.pause_durations.push(t0 - ps);
                }
            } else if pause_start.is_none() {
                pause_start = Some(t0);
            }
            let _ = t1;
        }
        if let Some(ps) = pause_start {
            out.pause_durations.push(path.last().unwrap().0 - ps);
        }

        // Visitation counts.
        let user_visits = visits.entry(session.user).or_default();
        for &(_, (x, y)) in &path {
            let key = ((x / cell).floor() as i64, (y / cell).floor() as i64);
            *user_visits.entry(key).or_insert(0) += 1;
        }
    }

    // Aggregate rank/frequency over users with >= 2 cells.
    let mut rank_sums: Vec<f64> = Vec::new();
    let mut rank_counts: Vec<u64> = Vec::new();
    for per_cell in visits.values() {
        if per_cell.len() < 2 {
            continue;
        }
        let total: u64 = per_cell.values().sum();
        let mut counts: Vec<u64> = per_cell.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        for (rank, &c) in counts.iter().enumerate() {
            if rank_sums.len() <= rank {
                rank_sums.push(0.0);
                rank_counts.push(0);
            }
            rank_sums[rank] += c as f64 / total as f64;
            rank_counts[rank] += 1;
        }
    }
    out.visit_rank_frequency = rank_sums
        .iter()
        .zip(&rank_counts)
        .map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
        .collect();

    // Deterministic sample order for serialization and comparisons.
    out.radii_of_gyration
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.jump_lengths.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.pause_durations
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot};

    fn single_user_trace(path: &[(f64, f64)]) -> Trace {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for (k, &(x, y)) in path.iter().enumerate() {
            let mut s = Snapshot::new((k as f64 + 1.0) * 10.0);
            s.push(UserId(1), Position::new(x, y, 22.0));
            t.push(s);
        }
        t
    }

    #[test]
    fn gyration_of_symmetric_square() {
        // Four corners of a square around (5,5), side 10: every point
        // at distance sqrt(50) from the centroid.
        let r = radius_of_gyration(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]);
        assert!((r - 50.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn gyration_of_point_is_zero() {
        assert_eq!(radius_of_gyration(&[(3.0, 4.0)]), 0.0);
        assert_eq!(radius_of_gyration(&[]), 0.0);
    }

    #[test]
    fn jumps_and_pauses_extracted() {
        // Move, still, still, move: one pause of 20 s between jumps.
        let t = single_user_trace(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 0.0),
            (10.0, 0.0),
            (20.0, 0.0),
        ]);
        let m = mobility_metrics(&t, 20.0, &[]);
        assert_eq!(m.jump_lengths, vec![10.0, 10.0]);
        assert_eq!(m.pause_durations, vec![20.0]);
        assert_eq!(m.radii_of_gyration.len(), 1);
    }

    #[test]
    fn trailing_pause_counted() {
        let t = single_user_trace(&[(0.0, 0.0), (10.0, 0.0), (10.0, 0.0), (10.0, 0.0)]);
        let m = mobility_metrics(&t, 20.0, &[]);
        assert_eq!(m.pause_durations, vec![20.0]);
    }

    #[test]
    fn rank_frequency_decreases() {
        // A user spending 3 snapshots in one cell, 1 in another.
        let t = single_user_trace(&[(5.0, 5.0), (6.0, 5.0), (5.0, 6.0), (100.0, 100.0)]);
        let m = mobility_metrics(&t, 20.0, &[]);
        assert_eq!(m.visit_rank_frequency.len(), 2);
        assert!((m.visit_rank_frequency[0] - 0.75).abs() < 1e-9);
        assert!((m.visit_rank_frequency[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn excluded_user_ignored() {
        let t = single_user_trace(&[(0.0, 0.0), (10.0, 0.0)]);
        let m = mobility_metrics(&t, 20.0, &[UserId(1)]);
        assert_eq!(m, MobilityMetrics::default());
    }

    #[test]
    fn gyration_bounded_by_max_distance() {
        // RoG can never exceed the largest distance from centroid.
        let pts = [(0.0, 0.0), (0.0, 100.0), (3.0, 55.0), (1.0, 20.0)];
        let r = radius_of_gyration(&pts);
        assert!(r > 0.0 && r < 100.0);
    }
}
