//! Temporal analysis: contact opportunities between users (paper §3.1).
//!
//! Definitions, following Chaintreau et al. (the paper's reference \[4\]):
//!
//! * **Contact time (CT)** — the time interval in which two users are
//!   within communication range `r` of each other. With snapshots every
//!   τ, a contact observed in `k` consecutive snapshots contributes
//!   `k·τ` (each sample witnesses τ seconds of contact).
//! * **Inter-contact time (ICT)** — for a pair with successive contact
//!   intervals, the gap between the end of the k-th and the start of
//!   the (k+1)-th: `ICT_k = t_start(k+1) − t_end(k)`.
//! * **First-contact time (FT)** — per user, the waiting time from the
//!   user's first appearance to the first snapshot in which they have
//!   at least one neighbor ("the waiting time for a user to contact her
//!   first neighbor (ever)").
//!
//! Seated avatars (the `{0,0,0}` sentinel) carry no usable position and
//! are skipped, as are explicitly excluded users (the crawler itself).

use crate::prep::{PreparedTrace, RangeEdges};
use serde::{Deserialize, Serialize};
use sl_trace::{Trace, UserId};
use std::collections::HashMap;

/// Extracted contact-opportunity samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContactSamples {
    /// Completed contact durations, seconds.
    pub contact_times: Vec<f64>,
    /// Inter-contact gaps, seconds.
    pub inter_contact_times: Vec<f64>,
    /// First-contact waiting times, seconds (users who met someone).
    pub first_contact_times: Vec<f64>,
    /// Contacts whose end was never observed (censored; not included in
    /// `contact_times`): still open when the trace ended, or truncated
    /// by a recorded measurement gap.
    pub censored_contacts: usize,
    /// Users who never had a neighbor during the whole trace (censored;
    /// not included in `first_contact_times`).
    pub never_contacted: usize,
}

#[derive(Debug, Clone, Copy)]
struct OpenContact {
    start: f64,
    last_seen: f64,
    snapshots: u32,
}

/// Extract CT / ICT / FT samples from a trace at communication range
/// `range`, ignoring `exclude`d users (e.g. the measuring crawler).
///
/// Convenience wrapper over [`extract_contacts_prepared`] for one-off
/// calls; the pipeline prepares the trace once and reuses it across
/// ranges and metric families instead.
pub fn extract_contacts(trace: &Trace, range: f64, exclude: &[UserId]) -> ContactSamples {
    let prep = PreparedTrace::new(trace, exclude);
    let edges = prep.edges_at(range);
    extract_contacts_prepared(&prep, &edges)
}

/// Extract CT / ICT / FT samples from a prepared trace using proximity
/// edges already computed at the target range.
///
/// This is the dense-index engine: users are pre-interned into the
/// prepared trace's `u32` universe, per-user state (first seen / first
/// contact) lives in flat arrays indexed by dense id, and per-pair
/// state lives in an insert-only open-addressing table keyed by the
/// packed dense pair. Episode closes are processed **lazily** — when a
/// pair reappears after an absence, or in one final walk over the
/// table — so each edge observation costs one table probe instead of
/// the reference engine's sort + per-open-pair membership scan per
/// snapshot. Outputs are bit-identical to
/// [`extract_contacts_prepared_reference`] (property-tested; the
/// analysis golden digest pins it end to end).
///
/// Recorded measurement gaps ([`sl_trace::GapRecord`]) are honored the
/// way [`sl_trace::extract_sessions`] honors them — instrument
/// blindness must not masquerade as pair behavior:
///
/// * a contact whose pair is absent at the first snapshot after a gap
///   is **censored** (its true end is unobserved), not closed with a
///   fabricated duration and ICT baseline;
/// * ICT and FT samples subtract recorded blind time between the two
///   observation instants, so an outage never inflates a separation or
///   a first-contact wait.
///
/// On a gapless trace every sample is bit-identical to the gap-naive
/// extraction (the blind-time corrections are exact zeros).
pub fn extract_contacts_prepared(prep: &PreparedTrace, edges: &RangeEdges) -> ContactSamples {
    let tau = prep.tau();
    let trace = prep.trace;
    let n = prep.snapshots.len();
    let mut out = ContactSamples::default();
    if n == 0 {
        return out;
    }
    let times: Vec<f64> = prep.snapshots.iter().map(|s| s.t).collect();
    // Per-user state, flat over the dense universe. Snapshot times are
    // always finite, so NaN is a free "unset" sentinel.
    let universe = prep.universe.len();
    let mut first_seen = vec![f64::NAN; universe];
    let mut first_contact = vec![f64::NAN; universe];
    let mut pairs = PairTable::new();

    for k in 0..n {
        let t = times[k];
        let dense = &prep.dense[k];
        for &d in dense {
            if first_seen[d as usize].is_nan() {
                first_seen[d as usize] = t;
            }
        }
        for &(i, j) in edges.edges_of(k) {
            let (lo, hi) = {
                let (a, b) = (dense[i as usize], dense[j as usize]);
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            };
            if first_contact[lo as usize].is_nan() {
                first_contact[lo as usize] = t;
            }
            if first_contact[hi as usize].is_nan() {
                first_contact[hi as usize] = t;
            }
            let key = ((lo as u64) << 32) | hi as u64;
            let (slot, is_new) = pairs.slot(key);
            let s = &mut pairs.states[slot];
            if is_new {
                *s = PairState {
                    last_seen: k as u32,
                    count: 1,
                    prev_end: f64::NAN,
                };
                continue;
            }
            if s.last_seen as usize == k {
                // A malformed snapshot can repeat an edge key (duplicate
                // user entries); the reference's sorted-dedup drops it.
                continue;
            }
            if s.last_seen as usize + 1 == k {
                s.last_seen = k as u32;
                s.count += 1;
                continue;
            }
            // The pair reappears after an absence: its previous episode
            // ended at the first snapshot that missed it. Close (or
            // censor) that episode now — lazily, but with the same
            // close instant the snapshot-by-snapshot reference used.
            let last_t = times[s.last_seen as usize];
            let close_t = times[s.last_seen as usize + 1];
            if trace.blind_time(last_t, close_t) > 0.0 {
                out.censored_contacts += 1;
                s.prev_end = f64::NAN;
            } else {
                out.contact_times.push(s.count as f64 * tau);
                s.prev_end = last_t;
            }
            if !s.prev_end.is_nan() {
                let ict = t - s.prev_end - trace.blind_time(s.prev_end, t);
                if ict > 0.0 {
                    out.inter_contact_times.push(ict);
                }
            }
            s.last_seen = k as u32;
            s.count = 1;
        }
    }

    // Final walk: every tracked pair still carries its last episode.
    // Open at trace end -> censored; otherwise close at the first
    // absent snapshot, exactly as during the scan.
    for idx in 0..pairs.keys.len() {
        if pairs.keys[idx] == EMPTY_PAIR {
            continue;
        }
        let s = &pairs.states[idx];
        if s.last_seen as usize == n - 1 {
            out.censored_contacts += 1;
        } else {
            let last_t = times[s.last_seen as usize];
            let close_t = times[s.last_seen as usize + 1];
            if trace.blind_time(last_t, close_t) > 0.0 {
                out.censored_contacts += 1;
            } else {
                out.contact_times.push(s.count as f64 * tau);
            }
        }
    }

    for d in 0..universe {
        let t0 = first_seen[d];
        if t0.is_nan() {
            continue;
        }
        let tc = first_contact[d];
        if tc.is_nan() {
            out.never_contacted += 1;
        } else {
            // The wait for a first neighbor excludes time the crawler
            // was not looking (zero on gapless traces).
            out.first_contact_times
                .push(tc - t0 - trace.blind_time(t0, tc));
        }
    }

    // Deterministic output order regardless of table layout.
    out.contact_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.inter_contact_times
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.first_contact_times
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

/// Unoccupied pair-table slot. Real keys pack two dense ids `< 2^32 - 1`
/// (a dense universe can never reach `u32::MAX` users), so `u64::MAX`
/// is unreachable.
const EMPTY_PAIR: u64 = u64::MAX;

/// Multiply-shift slot hash for a power-of-two table of `cap` slots.
/// Taking the **high** bits of the product matters: low bits of `x * C`
/// depend only on the low bits of `x`, and packed dense-id pairs keep
/// all their entropy in the low bits — masking the product would pack
/// every key into a tiny slot prefix and turn linear probing into one
/// giant cluster.
fn hash_slot(key: u64, cap: usize) -> usize {
    let h = (key ^ (key >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> (64 - cap.trailing_zeros())) as usize
}

/// Per-pair contact state: the open (or last) episode plus the ICT
/// baseline left by the previous clean close (NaN = none).
#[derive(Debug, Clone, Copy)]
struct PairState {
    /// Snapshot index the pair was last seen in range.
    last_seen: u32,
    /// Observed snapshots of the current episode.
    count: u32,
    /// End instant of the previous cleanly-closed episode.
    prev_end: f64,
}

/// Insert-only open-addressing table: packed dense pair -> state slot.
/// Mirrors the `CsrScratch` arena idea — flat storage, no per-key
/// allocation, Fibonacci hashing, linear probing.
struct PairTable {
    keys: Vec<u64>,
    states: Vec<PairState>,
    items: usize,
}

impl PairTable {
    fn new() -> Self {
        PairTable {
            keys: vec![EMPTY_PAIR; 1024],
            states: vec![
                PairState {
                    last_seen: 0,
                    count: 0,
                    prev_end: f64::NAN,
                };
                1024
            ],
            items: 0,
        }
    }

    /// Slot of `key`, inserting an uninitialized state when absent.
    /// Returns `(slot, inserted_now)`.
    fn slot(&mut self, key: u64) -> (usize, bool) {
        if self.items * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = hash_slot(key, self.keys.len());
        loop {
            let k = self.keys[slot];
            if k == key {
                return (slot, false);
            }
            if k == EMPTY_PAIR {
                self.keys[slot] = key;
                self.items += 1;
                return (slot, true);
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_PAIR; new_cap]);
        let old_states = std::mem::replace(
            &mut self.states,
            vec![
                PairState {
                    last_seen: 0,
                    count: 0,
                    prev_end: f64::NAN,
                };
                new_cap
            ],
        );
        let mask = new_cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_states) {
            if k == EMPTY_PAIR {
                continue;
            }
            let mut slot = hash_slot(k, new_cap);
            while self.keys[slot] != EMPTY_PAIR {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = k;
            self.states[slot] = s;
        }
    }
}

/// The original hash-map contact engine, retained verbatim as the
/// oracle [`extract_contacts_prepared`] is property-tested against:
/// per-snapshot sorted pair sets, eager episode closes, `UserId`-keyed
/// maps. Semantics documented on [`extract_contacts_prepared`] — the
/// two are bit-for-bit interchangeable.
pub fn extract_contacts_prepared_reference(
    prep: &PreparedTrace,
    edges: &RangeEdges,
) -> ContactSamples {
    let tau = prep.tau();
    let trace = prep.trace;

    let mut open: HashMap<(UserId, UserId), OpenContact> = HashMap::new();
    let mut last_end: HashMap<(UserId, UserId), f64> = HashMap::new();
    let mut first_seen: HashMap<UserId, f64> = HashMap::new();
    let mut first_contact: HashMap<UserId, f64> = HashMap::new();

    let mut out = ContactSamples::default();

    // Scratch buffers reused across all snapshots.
    let mut now_pairs: Vec<(UserId, UserId)> = Vec::new();
    let mut closed: Vec<(UserId, UserId)> = Vec::new();

    for (k, snap) in prep.snapshots.iter().enumerate() {
        let snap_edges = edges.edges_of(k);
        for &user in &snap.users {
            first_seen.entry(user).or_insert(snap.t);
        }

        // Pairs in range right now, as a sorted vector.
        now_pairs.clear();
        for &(i, j) in snap_edges {
            let (a, b) = (snap.users[i as usize], snap.users[j as usize]);
            let key = if a < b { (a, b) } else { (b, a) };
            now_pairs.push(key);
            // First contact bookkeeping for both endpoints.
            for u in [key.0, key.1] {
                first_contact.entry(u).or_insert(snap.t);
            }
        }
        now_pairs.sort_unstable();
        // A duplicate user entry in a malformed snapshot could repeat a
        // key; the old hash-set path deduped implicitly, so match it.
        now_pairs.dedup();

        // Close contacts that did not survive into this snapshot. A
        // contact "survives" only if the pair is in range at the very
        // next snapshot; a single missed snapshot ends it (τ is the
        // measurement resolution). Exception: when the instrument was
        // blind between the last sighting and this snapshot, the
        // contact's true end is unobservable — censor it (no CT sample,
        // and no ICT baseline either) instead of pretending the pair
        // separated right when the crawler happened to go dark.
        closed.clear();
        for (key, oc) in &open {
            if now_pairs.binary_search(key).is_err() {
                if trace.blind_time(oc.last_seen, snap.t) > 0.0 {
                    out.censored_contacts += 1;
                    last_end.remove(key);
                } else {
                    out.contact_times.push(oc.snapshots as f64 * tau);
                    last_end.insert(*key, oc.last_seen);
                }
                closed.push(*key);
            }
        }
        for key in &closed {
            open.remove(key);
        }

        // Extend or open contacts present now.
        for &key in &now_pairs {
            match open.get_mut(&key) {
                Some(oc) => {
                    oc.last_seen = snap.t;
                    oc.snapshots += 1;
                }
                None => {
                    if let Some(&prev_end) = last_end.get(&key) {
                        // Blind spans between the two observation
                        // instants are not separation time; subtract
                        // them (exactly zero on gapless traces).
                        let ict = snap.t - prev_end - trace.blind_time(prev_end, snap.t);
                        if ict > 0.0 {
                            out.inter_contact_times.push(ict);
                        }
                    }
                    open.insert(
                        key,
                        OpenContact {
                            start: snap.t,
                            last_seen: snap.t,
                            snapshots: 1,
                        },
                    );
                }
            }
        }
    }

    out.censored_contacts += open.len();
    // Suppress "unused" on `start`: kept for debuggability of open
    // contacts; assert the invariant instead.
    debug_assert!(open.values().all(|oc| oc.last_seen >= oc.start));

    for (user, &t0) in &first_seen {
        match first_contact.get(user) {
            // The wait for a first neighbor excludes time the crawler
            // was not looking (zero on gapless traces).
            Some(&tc) => out
                .first_contact_times
                .push(tc - t0 - trace.blind_time(t0, tc)),
            None => out.never_contacted += 1,
        }
    }

    // Deterministic output order regardless of hash iteration.
    out.contact_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.inter_contact_times
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.first_contact_times
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot, Trace};

    /// Build a trace from a schedule: per snapshot, (user, x) pairs.
    /// All users share y = 0; tau = 10.
    fn trace_of(schedule: &[&[(u32, f64)]]) -> Trace {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for (k, entries) in schedule.iter().enumerate() {
            let mut s = Snapshot::new((k as f64 + 1.0) * 10.0);
            for &(u, x) in *entries {
                s.push(UserId(u), Position::new(x, 0.0, 22.0));
            }
            t.push(s);
        }
        t
    }

    #[test]
    fn simple_contact_duration() {
        // Users 1,2 together for 3 snapshots, then apart for the rest.
        let t = trace_of(&[
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0), (2, 100.0)],
            &[(1, 0.0), (2, 100.0)],
        ]);
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.contact_times, vec![30.0]);
        assert_eq!(c.censored_contacts, 0);
        // Both users met at their first snapshot: FT = 0 for both.
        assert_eq!(c.first_contact_times, vec![0.0, 0.0]);
        assert!(c.inter_contact_times.is_empty());
    }

    #[test]
    fn inter_contact_gap_measured() {
        // In contact at snapshots 1-2 (t=10..20), apart 3-4 (t=30..40),
        // together again at 5 (t=50): ICT = 50 - 20 = 30.
        let t = trace_of(&[
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0), (2, 50.0)],
            &[(1, 0.0), (2, 50.0)],
            &[(1, 0.0), (2, 5.0)],
        ]);
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.inter_contact_times, vec![30.0]);
        // First contact closed with 2 snapshots -> 20 s; second contact
        // censored at trace end.
        assert_eq!(c.contact_times, vec![20.0]);
        assert_eq!(c.censored_contacts, 1);
    }

    #[test]
    fn first_contact_waiting_time() {
        // User 3 appears at t=10 but only meets user 1 at t=40: FT = 30.
        let t = trace_of(&[
            &[(1, 0.0), (3, 200.0)],
            &[(1, 0.0), (3, 150.0)],
            &[(1, 0.0), (3, 80.0)],
            &[(1, 0.0), (3, 5.0)],
        ]);
        let c = extract_contacts(&t, 10.0, &[]);
        // User 1's FT is also 30 (nobody near it earlier).
        assert_eq!(c.first_contact_times, vec![30.0, 30.0]);
        assert_eq!(c.never_contacted, 0);
    }

    #[test]
    fn never_contacted_counted_not_sampled() {
        let t = trace_of(&[&[(1, 0.0), (2, 200.0)], &[(1, 0.0), (2, 200.0)]]);
        let c = extract_contacts(&t, 10.0, &[]);
        assert!(c.first_contact_times.is_empty());
        assert_eq!(c.never_contacted, 2);
        assert!(c.contact_times.is_empty());
    }

    #[test]
    fn departure_ends_contact() {
        // User 2 leaves the land after snapshot 2.
        let t = trace_of(&[
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0), (2, 5.0)],
            &[(1, 0.0)],
            &[(1, 0.0)],
        ]);
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.contact_times, vec![20.0]);
    }

    #[test]
    fn range_matters() {
        // 50 m apart: contact at r=80, none at r=10.
        let t = trace_of(&[&[(1, 0.0), (2, 50.0)], &[(1, 0.0), (2, 50.0)]]);
        let cb = extract_contacts(&t, 10.0, &[]);
        let cw = extract_contacts(&t, 80.0, &[]);
        assert_eq!(cb.never_contacted, 2);
        assert_eq!(cw.censored_contacts, 1);
        assert_eq!(cw.never_contacted, 0);
    }

    #[test]
    fn excluded_user_invisible() {
        // User 9 (the crawler) sits next to user 1 the whole time.
        let t = trace_of(&[&[(1, 0.0), (9, 1.0)], &[(1, 0.0), (9, 1.0)]]);
        let c = extract_contacts(&t, 10.0, &[UserId(9)]);
        assert!(c.contact_times.is_empty());
        assert_eq!(c.censored_contacts, 0);
        assert_eq!(c.never_contacted, 1, "only user 1 is counted at all");
    }

    #[test]
    fn seated_users_skipped() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let mut s = Snapshot::new(10.0);
        s.push(UserId(1), Position::new(5.0, 0.0, 22.0));
        s.push(UserId(2), Position::SEATED);
        t.push(s);
        let mut s = Snapshot::new(20.0);
        s.push(UserId(1), Position::new(5.0, 0.0, 22.0));
        s.push(UserId(2), Position::SEATED);
        t.push(s);
        let c = extract_contacts(&t, 10.0, &[]);
        // The seated user is at {0,0,0}, 5 m from user 1 — but must not
        // produce a contact: the coordinates are a sentinel, not a place.
        assert!(c.contact_times.is_empty());
        assert_eq!(c.censored_contacts, 0);
    }

    #[test]
    fn three_way_group_counts_all_pairs() {
        let t = trace_of(&[
            &[(1, 0.0), (2, 4.0), (3, 8.0)],
            &[(1, 0.0), (2, 4.0), (3, 8.0)],
            &[(1, 0.0), (2, 100.0), (3, 200.0)],
        ]);
        let c = extract_contacts(&t, 10.0, &[]);
        // Pairs (1,2), (2,3), (1,3) all in range (8 <= 10) for 2 snaps.
        assert_eq!(c.contact_times, vec![20.0, 20.0, 20.0]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(LandMeta::standard("T", 10.0));
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c, ContactSamples::default());
    }

    /// Like `trace_of` but with explicit snapshot times (tau = 10),
    /// for schedules with holes covered by gap records.
    fn trace_at(schedule: &[(f64, &[(u32, f64)])]) -> Trace {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for &(time, entries) in schedule {
            let mut s = Snapshot::new(time);
            for &(u, x) in entries {
                s.push(UserId(u), Position::new(x, 0.0, 22.0));
            }
            t.push(s);
        }
        t
    }

    #[test]
    fn contact_truncated_by_gap_is_censored() {
        use sl_trace::{GapCause, GapRecord};
        // Pair together at t=10,20; crawler blind over [20, 50]; pair
        // apart at the first snapshot after the gap. Whether (and when)
        // the contact ended inside the blind span is unknowable.
        let mut t = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (50.0, &[(1, 0.0), (2, 100.0)]),
            (60.0, &[(1, 0.0), (2, 100.0)]),
        ]);
        // Sanity: without the gap record the close is fabricated.
        let naive = extract_contacts(&t, 10.0, &[]);
        assert_eq!(naive.contact_times, vec![20.0]);
        assert_eq!(naive.censored_contacts, 0);

        t.record_gap(GapRecord::new(GapCause::Stall, 20.0, 50.0));
        let c = extract_contacts(&t, 10.0, &[]);
        assert!(c.contact_times.is_empty(), "end unobserved -> no CT sample");
        assert_eq!(c.censored_contacts, 1);
        assert!(c.inter_contact_times.is_empty());
    }

    #[test]
    fn ict_excludes_blind_time() {
        use sl_trace::{GapCause, GapRecord};
        // The contact ends observably at t=20 (pair seen apart at t=30,
        // no blindness in between); the crawler is then blind over
        // [30, 80]; the pair re-meets at t=90. Raw separation
        // 90 − 20 = 70 s includes 50 blind seconds: ICT must be 20 s.
        let mut t = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (30.0, &[(1, 0.0), (2, 100.0)]),
            (80.0, &[(1, 0.0), (2, 100.0)]),
            (90.0, &[(1, 0.0), (2, 5.0)]),
        ]);
        t.record_gap(GapRecord::new(GapCause::Throttle, 30.0, 80.0));
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.inter_contact_times, vec![20.0]);
        assert_eq!(c.contact_times, vec![20.0]);
        assert_eq!(c.censored_contacts, 1, "re-met contact open at end");
    }

    #[test]
    fn first_contact_time_excludes_blind_time() {
        use sl_trace::{GapCause, GapRecord};
        // User 3 appears at t=10, the crawler is blind over [20, 60],
        // and user 3 first has a neighbor at t=70. The raw 60 s wait
        // includes 40 blind seconds -> FT = 20 s (for user 1 too).
        let mut t = trace_at(&[
            (10.0, &[(1, 0.0), (3, 200.0)]),
            (20.0, &[(1, 0.0), (3, 200.0)]),
            (60.0, &[(1, 0.0), (3, 150.0)]),
            (70.0, &[(1, 0.0), (3, 5.0)]),
        ]);
        t.record_gap(GapRecord::new(GapCause::Kick, 20.0, 60.0));
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.first_contact_times, vec![20.0, 20.0]);
        assert_eq!(c.never_contacted, 0);
    }

    #[test]
    fn censored_contact_leaves_no_ict_baseline() {
        use sl_trace::{GapCause, GapRecord};
        // Contact 1 closes cleanly at t=30 (baseline end t=20); contact
        // 2 (t=40..50) is censored by the gap [50, 100]. When the pair
        // meets again at t=110 no previous end is known — an ICT sample
        // from the stale t=20 baseline would span contact 2 entirely.
        let mut t = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (30.0, &[(1, 0.0), (2, 100.0)]),
            (40.0, &[(1, 0.0), (2, 5.0)]),
            (50.0, &[(1, 0.0), (2, 5.0)]),
            (100.0, &[(1, 0.0), (2, 100.0)]),
            (110.0, &[(1, 0.0), (2, 5.0)]),
        ]);
        t.record_gap(GapRecord::new(GapCause::Disconnect, 50.0, 100.0));
        let c = extract_contacts(&t, 10.0, &[]);
        // One ICT from the one clean separation: 40 − 20 = 20 s.
        assert_eq!(c.inter_contact_times, vec![20.0]);
        assert_eq!(c.contact_times, vec![20.0]);
        // Gap-censored contact 2 + contact 3 open at trace end.
        assert_eq!(c.censored_contacts, 2);
    }

    #[test]
    fn contact_present_across_gap_keeps_accumulating() {
        use sl_trace::{GapCause, GapRecord};
        // Pair together on both sides of a blind span and apart only at
        // t=80 (no blindness since t=70): the contact closes normally
        // with 4 *observed* snapshots -> CT = 40 s, no blind inflation.
        let mut t = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (60.0, &[(1, 0.0), (2, 5.0)]),
            (70.0, &[(1, 0.0), (2, 5.0)]),
            (80.0, &[(1, 0.0), (2, 100.0)]),
        ]);
        t.record_gap(GapRecord::new(GapCause::Stall, 20.0, 60.0));
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.contact_times, vec![40.0]);
        assert_eq!(c.censored_contacts, 0);
        assert!(c.inter_contact_times.is_empty());
    }

    /// Assert the dense engine and the reference agree bit for bit on
    /// `t`, at both paper ranges.
    fn assert_engines_agree(t: &Trace, exclude: &[UserId]) {
        let prep = PreparedTrace::new(t, exclude);
        for range in [10.0, 80.0] {
            let edges = prep.edges_at(range);
            assert_eq!(
                extract_contacts_prepared(&prep, &edges),
                extract_contacts_prepared_reference(&prep, &edges),
                "range {range}"
            );
        }
    }

    #[test]
    fn dense_engine_matches_reference_on_gap_schedules() {
        use sl_trace::{GapCause, GapRecord};
        // Every gap-interaction schedule from the unit tests above, the
        // single-snapshot and empty traces, and a duplicate-user trace.
        assert_engines_agree(&Trace::new(LandMeta::standard("T", 10.0)), &[]);
        assert_engines_agree(&trace_of(&[&[(1, 0.0), (2, 5.0)]]), &[]);
        let mut censored = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (50.0, &[(1, 0.0), (2, 100.0)]),
            (60.0, &[(1, 0.0), (2, 100.0)]),
        ]);
        censored.record_gap(GapRecord::new(GapCause::Stall, 20.0, 50.0));
        assert_engines_agree(&censored, &[]);
        let mut baseline = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (30.0, &[(1, 0.0), (2, 100.0)]),
            (40.0, &[(1, 0.0), (2, 5.0)]),
            (50.0, &[(1, 0.0), (2, 5.0)]),
            (100.0, &[(1, 0.0), (2, 100.0)]),
            (110.0, &[(1, 0.0), (2, 5.0)]),
        ]);
        baseline.record_gap(GapRecord::new(GapCause::Disconnect, 50.0, 100.0));
        assert_engines_agree(&baseline, &[]);
        let mut straddle = trace_at(&[
            (10.0, &[(1, 0.0), (2, 5.0)]),
            (20.0, &[(1, 0.0), (2, 5.0)]),
            (60.0, &[(1, 0.0), (2, 5.0)]),
            (70.0, &[(1, 0.0), (2, 5.0)]),
            (80.0, &[(1, 0.0), (2, 100.0)]),
        ]);
        straddle.record_gap(GapRecord::new(GapCause::Stall, 20.0, 60.0));
        assert_engines_agree(&straddle, &[]);
    }

    #[test]
    fn dense_engine_matches_reference_with_duplicate_users() {
        // Malformed input: user 1 appears twice in one snapshot, which
        // creates self-pairs and repeated pair keys. Both engines must
        // degrade identically.
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for k in 1..=3i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            s.push(UserId(1), Position::new(0.0, 0.0, 22.0));
            s.push(UserId(2), Position::new(5.0, 0.0, 22.0));
            s.push(UserId(1), Position::new(2.0, 0.0, 22.0));
            t.push(s);
        }
        assert_engines_agree(&t, &[]);
    }

    #[test]
    fn gapless_trace_unchanged_by_gap_awareness() {
        // The blind-time corrections are exact zeros without gap
        // records: spot-check a mixed schedule against the values the
        // gap-naive extractor produced.
        let t = trace_of(&[
            &[(1, 0.0), (2, 5.0), (3, 100.0)],
            &[(1, 0.0), (2, 50.0), (3, 100.0)],
            &[(1, 0.0), (2, 5.0), (3, 99.0)],
            &[(1, 0.0), (2, 5.0), (3, 100.0)],
        ]);
        let c = extract_contacts(&t, 10.0, &[]);
        assert_eq!(c.contact_times, vec![10.0]);
        assert_eq!(c.inter_contact_times, vec![20.0]);
        assert_eq!(c.censored_contacts, 1, "second (1,2) contact open at end");
        assert_eq!(c.first_contact_times, vec![0.0, 0.0]);
        assert_eq!(c.never_contacted, 1, "user 3 never met anyone");
    }
}
