//! Spatial distribution of users: zone occupation (paper Fig. 3).
//!
//! Lands are divided into L × L cells (L = 20 m in the paper) and the
//! number of users per cell is counted in every snapshot. The reported
//! CDF aggregates cell-occupancy samples over all cells and snapshots:
//! its message is that "a large fraction of the land has no users" while
//! "some lands (e.g. Dance Island) are characterized by hot-spots with
//! several tens of users".

use crate::prep::{prepared_windows, PreparedSnapshot, PreparedTrace};
use serde::{Deserialize, Serialize};
use sl_stats::binning::cell_counts;
use sl_store::StoreError;
use sl_trace::{Trace, UserId};
use std::path::Path;

/// Zone-occupation samples for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ZoneOccupation {
    /// Cell side L, meters.
    pub cell_size: f64,
    /// Occupancy samples: users-per-cell, over all cells × snapshots.
    pub counts: Vec<f64>,
    /// Fraction of cell samples that are empty.
    pub empty_fraction: f64,
    /// Largest single-cell occupancy observed (the hot-spot peak).
    pub max_occupancy: u32,
}

/// Compute zone occupation at cell side `cell_size` (paper: 20 m),
/// ignoring `exclude`d users and seated avatars.
///
/// Convenience wrapper over [`zone_occupation_prepared`]; the pipeline
/// prepares the trace once and shares it across metric families.
pub fn zone_occupation(trace: &Trace, cell_size: f64, exclude: &[UserId]) -> ZoneOccupation {
    let prep = PreparedTrace::new(trace, exclude);
    zone_occupation_prepared(&prep, cell_size)
}

/// Compute zone occupation from a prepared trace. The per-snapshot
/// binning fans out over snapshots; the flatten keeps snapshot order,
/// so the sample vector is byte-identical to the serial walk.
pub fn zone_occupation_prepared(prep: &PreparedTrace, cell_size: f64) -> ZoneOccupation {
    let (width, height) = (prep.trace.meta.width, prep.trace.meta.height);
    let per_snapshot: Vec<Vec<u32>> = sl_par::par_map(&prep.snapshots, |_, snap| {
        cell_counts(&snap.points, width, height, cell_size).counts
    });
    let mut acc = ZoneAccumulator::new(width, height, cell_size);
    for counts in &per_snapshot {
        acc.add_counts(counts);
    }
    acc.finish()
}

/// Incremental zone-occupation fold: one snapshot at a time, O(cells)
/// state. Both the batch path ([`zone_occupation_prepared`]) and the
/// streaming path ([`zone_occupation_streaming`]) reduce through this
/// accumulator, so their outputs agree by construction.
#[derive(Debug)]
pub struct ZoneAccumulator {
    width: f64,
    height: f64,
    out: ZoneOccupation,
    empty: usize,
}

impl ZoneAccumulator {
    /// Start a fold over a `width` × `height` land at cell side
    /// `cell_size` (must be positive).
    pub fn new(width: f64, height: f64, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        ZoneAccumulator {
            width,
            height,
            out: ZoneOccupation {
                cell_size,
                ..Default::default()
            },
            empty: 0,
        }
    }

    /// Bin one prepared snapshot and absorb its cell counts.
    pub fn add(&mut self, snap: &PreparedSnapshot) {
        let counts = cell_counts(&snap.points, self.width, self.height, self.out.cell_size).counts;
        self.add_counts(&counts);
    }

    /// Absorb one snapshot's already-binned cell counts.
    fn add_counts(&mut self, counts: &[u32]) {
        for &c in counts {
            if c == 0 {
                self.empty += 1;
            }
            self.out.max_occupancy = self.out.max_occupancy.max(c);
            self.out.counts.push(c as f64);
        }
    }

    /// Finish the fold.
    pub fn finish(self) -> ZoneOccupation {
        let mut out = self.out;
        out.empty_fraction = if out.counts.is_empty() {
            1.0
        } else {
            self.empty as f64 / out.counts.len() as f64
        };
        out
    }
}

/// Zone occupation computed *streaming* from an on-disk segmented
/// store: windows of `window` snapshots are read, filtered and binned
/// one at a time, so peak RSS is bounded by the window size instead of
/// the trace length. Produces exactly what [`zone_occupation`] would
/// over the store's full materialized trace.
pub fn zone_occupation_streaming(
    dir: &Path,
    cell_size: f64,
    exclude: &[UserId],
    window: usize,
) -> Result<ZoneOccupation, StoreError> {
    let stream = prepared_windows(dir, exclude, window)?;
    let (width, height) = (stream.meta().width, stream.meta().height);
    let mut acc = ZoneAccumulator::new(width, height, cell_size);
    for w in stream {
        for snap in w? {
            acc.add(&snap);
        }
    }
    Ok(acc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_trace::{LandMeta, Position, Snapshot, Trace};

    #[test]
    fn counts_cells_and_hotspots() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let mut s = Snapshot::new(10.0);
        // Five users piled into one 20 m cell, one loner elsewhere.
        for u in 0..5 {
            s.push(UserId(u), Position::new(10.0 + u as f64, 10.0, 22.0));
        }
        s.push(UserId(99), Position::new(200.0, 200.0, 22.0));
        t.push(s);
        let z = zone_occupation(&t, 20.0, &[]);
        // 13x13 = 169 cells for a single snapshot.
        assert_eq!(z.counts.len(), 169);
        assert_eq!(z.max_occupancy, 5);
        let occupied = z.counts.iter().filter(|&&c| c > 0.0).count();
        assert_eq!(occupied, 2);
        assert!((z.empty_fraction - 167.0 / 169.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_over_snapshots() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        for k in 1..=3 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            s.push(UserId(1), Position::new(5.0, 5.0, 22.0));
            t.push(s);
        }
        let z = zone_occupation(&t, 20.0, &[]);
        assert_eq!(z.counts.len(), 3 * 169);
        assert_eq!(z.counts.iter().filter(|&&c| c > 0.0).count(), 3);
    }

    #[test]
    fn seated_and_excluded_ignored() {
        let mut t = Trace::new(LandMeta::standard("T", 10.0));
        let mut s = Snapshot::new(10.0);
        s.push(UserId(1), Position::SEATED);
        s.push(UserId(2), Position::new(30.0, 30.0, 22.0));
        t.push(s);
        let z = zone_occupation(&t, 20.0, &[UserId(2)]);
        assert_eq!(z.max_occupancy, 0);
        assert_eq!(z.empty_fraction, 1.0);
    }

    #[test]
    fn empty_trace_is_all_empty() {
        let t = Trace::new(LandMeta::standard("T", 10.0));
        let z = zone_occupation(&t, 20.0, &[]);
        assert!(z.counts.is_empty());
        assert_eq!(z.empty_fraction, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_cell() {
        let t = Trace::new(LandMeta::standard("T", 10.0));
        zone_occupation(&t, 0.0, &[]);
    }

    #[test]
    fn streaming_matches_batch() {
        use sl_store::{StoreConfig, StoreWriter};
        // Build a multi-segment store, then compare the windowed
        // streaming fold against the batch path over the same data.
        let dir =
            std::env::temp_dir().join(format!("sl-analysis-zones-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(
            &dir,
            LandMeta::standard("Stream", 10.0),
            StoreConfig {
                segment_max_bytes: 256,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let mut trace = Trace::new(LandMeta::standard("Stream", 10.0));
        for k in 1..=20i64 {
            let mut s = Snapshot::new(k as f64 * 10.0);
            for u in 0..(k % 4 + 1) as u32 {
                s.push(UserId(u), Position::new(u as f64 * 30.0 + 5.0, 10.0, 22.0));
            }
            s.push(UserId(77), Position::SEATED);
            w.append_snapshot(&s).unwrap();
            trace.push(s);
        }
        w.finalize().unwrap();

        let batch = zone_occupation(&trace, 20.0, &[UserId(1)]);
        for window in [1, 3, 7, 100] {
            let streamed = zone_occupation_streaming(&dir, 20.0, &[UserId(1)], window).unwrap();
            assert_eq!(streamed, batch, "window {window}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
