//! The chaos proxy itself: a TCP forwarder that misbehaves on purpose.

use crate::plan::{ChaosAction, ChaosInjector, ChaosPlan};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// A running chaos proxy. Connect clients to [`addr`]; each accepted
/// connection is paired with a fresh upstream connection and the
/// server-to-client byte stream is degraded per the plan. The
/// client-to-server direction is forwarded verbatim: the interesting
/// failure modes of a crawl are all on the reply path, and a clean
/// request path keeps fault attribution unambiguous in tests.
///
/// Every connection gets its own decision stream, derived from the
/// proxy seed and a connection counter — run order is deterministic for
/// a single-client crawler (the only kind this workspace has).
///
/// [`addr`]: ChaosProxy::addr
pub struct ChaosProxy {
    addr: SocketAddr,
    accept_task: tokio::task::JoinHandle<()>,
    connections: Arc<AtomicU64>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ChaosProxy {
    /// Bind `listen` (port 0 for ephemeral) and forward every accepted
    /// connection to `upstream` under `plan`.
    pub async fn bind(
        listen: &str,
        upstream: SocketAddr,
        plan: ChaosPlan,
        seed: u64,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen).await?;
        let addr = listener.local_addr()?;
        let connections = Arc::new(AtomicU64::new(0));
        let conn_counter = connections.clone();
        let accept_task = tokio::spawn(async move {
            while let Ok((client, _)) = listener.accept().await {
                crate::metrics::register().connections.inc();
                let n = conn_counter.fetch_add(1, Ordering::SeqCst);
                let conn_seed = seed ^ (n + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                tokio::spawn(async move {
                    // Connection errors are per-client; the proxy keeps
                    // accepting.
                    let _ = relay(client, upstream, plan, conn_seed).await;
                });
            }
        });
        Ok(ChaosProxy {
            addr,
            accept_task,
            connections,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many connections have been accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stop accepting new connections. In-flight relays run until
    /// either side closes.
    pub fn shutdown(&self) {
        self.accept_task.abort();
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.accept_task.abort();
    }
}

async fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    plan: ChaosPlan,
    seed: u64,
) -> std::io::Result<()> {
    client.set_nodelay(true).ok();
    let server = TcpStream::connect(upstream).await?;
    server.set_nodelay(true).ok();
    let (mut client_read, mut client_write) = client.into_split();
    let (mut server_read, mut server_write) = server.into_split();

    // Client → server: verbatim pump in its own task.
    let up = tokio::spawn(async move {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match client_read.read(&mut buf).await {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if server_write.write_all(&buf[..n]).await.is_err() {
                        break;
                    }
                }
            }
        }
        let _ = server_write.shutdown().await;
    });

    // Server → client: the chaotic direction.
    let metrics = crate::metrics::register();
    let mut inj = ChaosInjector::new(plan, seed);
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match server_read.read(&mut buf).await {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        let action = inj.decide();
        metrics.record_action(action);
        match action {
            ChaosAction::Forward => {
                if client_write.write_all(chunk).await.is_err() {
                    break;
                }
            }
            ChaosAction::Stall(ms) => {
                tokio::time::sleep(std::time::Duration::from_millis(ms)).await;
                if client_write.write_all(chunk).await.is_err() {
                    break;
                }
            }
            ChaosAction::Drop => {}
            ChaosAction::Corrupt => {
                let i = inj.corrupt_index(chunk.len());
                chunk[i] ^= 0xFF;
                if client_write.write_all(chunk).await.is_err() {
                    break;
                }
            }
            ChaosAction::Truncate => {
                let cut = (chunk.len() / 2).max(1);
                let _ = client_write.write_all(&chunk[..cut]).await;
                break;
            }
            ChaosAction::Duplicate => {
                if client_write.write_all(chunk).await.is_err() {
                    break;
                }
                if client_write.write_all(chunk).await.is_err() {
                    break;
                }
            }
            ChaosAction::Reset => break,
        }
    }
    // Sever both directions: the client must observe the close even if
    // it only ever reads, and the upstream pump must not linger.
    let _ = client_write.shutdown().await;
    up.abort();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes every byte back.
    async fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            while let Ok((mut s, _)) = listener.accept().await {
                tokio::spawn(async move {
                    let mut buf = [0u8; 4096];
                    loop {
                        match s.read(&mut buf).await {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if s.write_all(&buf[..n]).await.is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        addr
    }

    #[tokio::test]
    async fn transparent_proxy_round_trips() {
        let upstream = echo_server().await;
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream, ChaosPlan::none(), 1)
            .await
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).await.unwrap();
        let payload = b"through the looking glass";
        client.write_all(payload).await.unwrap();
        let mut got = vec![0u8; payload.len()];
        client.read_exact(&mut got).await.unwrap();
        assert_eq!(&got, payload);
        assert_eq!(proxy.connections(), 1);
    }

    #[tokio::test]
    async fn reset_plan_severs_connection() {
        let upstream = echo_server().await;
        let plan = ChaosPlan {
            reset_prob: 1.0,
            ..ChaosPlan::none()
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream, plan, 2)
            .await
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).await.unwrap();
        client.write_all(b"hello").await.unwrap();
        // The echo's reply chunk is replaced by a close.
        let mut buf = [0u8; 16];
        let n = client.read(&mut buf).await.unwrap();
        assert_eq!(n, 0, "reset must close without forwarding");
    }

    #[tokio::test]
    async fn corrupt_plan_flips_exactly_one_byte() {
        let upstream = echo_server().await;
        let plan = ChaosPlan {
            corrupt_prob: 1.0,
            ..ChaosPlan::none()
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream, plan, 3)
            .await
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).await.unwrap();
        let payload = b"0123456789";
        client.write_all(payload).await.unwrap();
        let mut got = vec![0u8; payload.len()];
        client.read_exact(&mut got).await.unwrap();
        let diffs = payload.iter().zip(&got).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one byte should differ");
    }

    #[tokio::test]
    async fn duplicate_plan_doubles_the_stream() {
        let upstream = echo_server().await;
        let plan = ChaosPlan {
            duplicate_prob: 1.0,
            ..ChaosPlan::none()
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream, plan, 4)
            .await
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).await.unwrap();
        let payload = b"echo";
        client.write_all(payload).await.unwrap();
        let mut got = vec![0u8; payload.len() * 2];
        client.read_exact(&mut got).await.unwrap();
        assert_eq!(&got[..4], payload);
        assert_eq!(&got[4..], payload);
    }

    #[tokio::test]
    async fn truncate_plan_halves_then_closes() {
        let upstream = echo_server().await;
        let plan = ChaosPlan {
            truncate_prob: 1.0,
            ..ChaosPlan::none()
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream, plan, 5)
            .await
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).await.unwrap();
        let payload = b"0123456789";
        client.write_all(payload).await.unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).await.unwrap();
        // The echo may arrive as one chunk (5 bytes forwarded) — but
        // regardless of chunking, something strictly less than the full
        // payload arrives before the close.
        assert!(!got.is_empty() && got.len() < payload.len(), "got {got:?}");
        assert_eq!(&got[..], &payload[..got.len()]);
    }

    #[tokio::test]
    async fn proxy_keeps_accepting_after_a_reset() {
        let upstream = echo_server().await;
        let plan = ChaosPlan {
            reset_prob: 1.0,
            ..ChaosPlan::none()
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream, plan, 6)
            .await
            .unwrap();
        for _ in 0..3 {
            let mut client = TcpStream::connect(proxy.addr()).await.unwrap();
            client.write_all(b"x").await.unwrap();
            let mut buf = [0u8; 4];
            let n = client.read(&mut buf).await.unwrap();
            assert_eq!(n, 0);
        }
        assert_eq!(proxy.connections(), 3);
    }
}
