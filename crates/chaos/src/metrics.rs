//! Chaos-proxy observability: accepted connections and mangling
//! actions fired by kind, as process-wide [`sl_obs`] counters.

use crate::plan::ChaosAction;
use sl_obs::Counter;
use std::sync::OnceLock;

/// The chaos proxy's metric handles.
#[derive(Debug)]
pub struct ChaosMetrics {
    /// Connections accepted by the proxy.
    pub connections: &'static Counter,
    /// Actions fired, [`ChaosAction`] order.
    actions: [&'static Counter; 7],
}

impl ChaosMetrics {
    /// Count one decided action (including clean forwards, so the
    /// mangled fraction can be computed from the export alone).
    pub fn record_action(&self, action: ChaosAction) {
        let slot = match action {
            ChaosAction::Forward => 0,
            ChaosAction::Stall(_) => 1,
            ChaosAction::Drop => 2,
            ChaosAction::Corrupt => 3,
            ChaosAction::Truncate => 4,
            ChaosAction::Duplicate => 5,
            ChaosAction::Reset => 6,
        };
        self.actions[slot].inc();
    }
}

/// The process-wide chaos metrics. First call registers everything.
pub fn register() -> &'static ChaosMetrics {
    static METRICS: OnceLock<ChaosMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ChaosMetrics {
        connections: sl_obs::counter("chaos.connections"),
        actions: [
            sl_obs::counter("chaos.actions.forward"),
            sl_obs::counter("chaos.actions.stall"),
            sl_obs::counter("chaos.actions.drop"),
            sl_obs::counter("chaos.actions.corrupt"),
            sl_obs::counter("chaos.actions.truncate"),
            sl_obs::counter("chaos.actions.duplicate"),
            sl_obs::counter("chaos.actions.reset"),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_count_by_kind() {
        let m = register();
        let before = sl_obs::counter("chaos.actions.drop").get();
        m.record_action(ChaosAction::Drop);
        assert!(sl_obs::counter("chaos.actions.drop").get() > before);
    }
}
