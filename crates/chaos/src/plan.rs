//! The chaos plan: what can go wrong, how often, decided deterministically.

use serde::{Deserialize, Serialize};
use sl_stats::rng::Rng;

/// Per-chunk misbehaviour probabilities for the proxy's
/// server-to-client direction. A "chunk" is whatever one socket read
/// returns — fault rates are therefore per read, not per byte, and a
/// plan tuned against small frames stays meaningful for large ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Pause forwarding for `stall_ms` before relaying the chunk.
    #[serde(default)]
    pub stall_prob: f64,
    /// Stall duration, wall milliseconds.
    #[serde(default)]
    pub stall_ms: u64,
    /// Discard the chunk entirely (the client sees a hole in the
    /// stream, which desynchronizes framing until the connection dies).
    #[serde(default)]
    pub drop_prob: f64,
    /// Flip one byte of the chunk.
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Forward only the first half of the chunk, then sever the
    /// connection.
    #[serde(default)]
    pub truncate_prob: f64,
    /// Forward the chunk twice.
    #[serde(default)]
    pub duplicate_prob: f64,
    /// Sever the connection without forwarding anything.
    #[serde(default)]
    pub reset_prob: f64,
}

impl ChaosPlan {
    /// A transparent proxy: every chunk forwarded verbatim.
    pub fn none() -> Self {
        ChaosPlan {
            stall_prob: 0.0,
            stall_ms: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            duplicate_prob: 0.0,
            reset_prob: 0.0,
        }
    }

    /// An actively hostile network: every fault kind enabled at rates
    /// that let a short crawl hit most of them.
    pub fn wild() -> Self {
        ChaosPlan {
            stall_prob: 0.02,
            stall_ms: 2_000,
            drop_prob: 0.02,
            corrupt_prob: 0.02,
            truncate_prob: 0.01,
            duplicate_prob: 0.02,
            reset_prob: 0.02,
        }
    }

    /// True when the proxy is fully transparent.
    pub fn is_none(&self) -> bool {
        self.stall_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reset_prob <= 0.0
    }
}

/// What to do with one forwarded chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Relay verbatim.
    Forward,
    /// Sleep this many milliseconds, then relay.
    Stall(u64),
    /// Discard the chunk.
    Drop,
    /// Flip one byte, then relay.
    Corrupt,
    /// Relay the first half, then sever the connection.
    Truncate,
    /// Relay the chunk twice.
    Duplicate,
    /// Sever the connection immediately.
    Reset,
}

/// Deterministic per-connection decision stream.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    rng: Rng,
}

impl ChaosInjector {
    /// Create with a per-connection seed.
    pub fn new(plan: ChaosPlan, seed: u64) -> Self {
        ChaosInjector {
            plan,
            rng: Rng::new(seed),
        }
    }

    /// Decide the fate of the next chunk. Connection-ending actions
    /// dominate content damage, which dominates mere slowness — the
    /// same precedence the in-server injector uses.
    pub fn decide(&mut self) -> ChaosAction {
        let p = self.plan;
        if p.reset_prob > 0.0 && self.rng.chance(p.reset_prob) {
            return ChaosAction::Reset;
        }
        if p.truncate_prob > 0.0 && self.rng.chance(p.truncate_prob) {
            return ChaosAction::Truncate;
        }
        if p.corrupt_prob > 0.0 && self.rng.chance(p.corrupt_prob) {
            return ChaosAction::Corrupt;
        }
        if p.drop_prob > 0.0 && self.rng.chance(p.drop_prob) {
            return ChaosAction::Drop;
        }
        if p.duplicate_prob > 0.0 && self.rng.chance(p.duplicate_prob) {
            return ChaosAction::Duplicate;
        }
        if p.stall_prob > 0.0 && self.rng.chance(p.stall_prob) {
            return ChaosAction::Stall(p.stall_ms);
        }
        ChaosAction::Forward
    }

    /// Which byte of an `len`-byte chunk to flip.
    pub fn corrupt_index(&mut self, len: usize) -> usize {
        self.rng.index(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_plan_always_forwards() {
        let mut inj = ChaosInjector::new(ChaosPlan::none(), 1);
        for _ in 0..10_000 {
            assert_eq!(inj.decide(), ChaosAction::Forward);
        }
    }

    #[test]
    fn decisions_replay_from_seed() {
        let a: Vec<ChaosAction> = {
            let mut i = ChaosInjector::new(ChaosPlan::wild(), 42);
            (0..500).map(|_| i.decide()).collect()
        };
        let b: Vec<ChaosAction> = {
            let mut i = ChaosInjector::new(ChaosPlan::wild(), 42);
            (0..500).map(|_| i.decide()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn wild_plan_reaches_every_action() {
        let mut inj = ChaosInjector::new(ChaosPlan::wild(), 3);
        let seen: Vec<ChaosAction> = (0..100_000).map(|_| inj.decide()).collect();
        for want in [
            ChaosAction::Forward,
            ChaosAction::Stall(2_000),
            ChaosAction::Drop,
            ChaosAction::Corrupt,
            ChaosAction::Truncate,
            ChaosAction::Duplicate,
            ChaosAction::Reset,
        ] {
            assert!(seen.contains(&want), "{want:?} never triggered");
        }
    }

    #[test]
    fn reset_rate_approximates_plan() {
        let mut inj = ChaosInjector::new(
            ChaosPlan {
                reset_prob: 0.1,
                ..ChaosPlan::none()
            },
            9,
        );
        let resets = (0..100_000)
            .filter(|_| inj.decide() == ChaosAction::Reset)
            .count();
        assert!((9_000..11_000).contains(&resets), "resets {resets}");
    }

    #[test]
    fn corrupt_index_in_bounds() {
        let mut inj = ChaosInjector::new(ChaosPlan::wild(), 11);
        for len in 1..100 {
            assert!(inj.corrupt_index(len) < len);
        }
    }

    #[test]
    fn none_detection() {
        assert!(ChaosPlan::none().is_none());
        assert!(!ChaosPlan::wild().is_none());
    }
}
