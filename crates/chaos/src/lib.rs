//! Byte-level TCP chaos proxy.
//!
//! The land server's own fault injector ([`sl-server`]'s `FaultConfig`)
//! misbehaves at the *protocol* layer: it decides per map request to
//! kick, stall, or corrupt. This crate attacks one layer lower — a
//! standalone TCP proxy that forwards opaque bytes between a client and
//! an upstream server and mangles the stream itself: stalls, dropped
//! chunks, flipped bytes, truncated writes, duplicated chunks, and
//! abrupt resets. Nothing here knows the wire protocol; whatever the
//! peers speak, the proxy degrades it the way a bad WAN would.
//!
//! Both layers are driven by the same deterministic RNG
//! ([`sl_stats::rng::Rng`]), so a chaotic run replays exactly from its
//! seed. A crawler that survives a crawl through [`ChaosProxy`] with
//! [`ChaosPlan::wild`] has demonstrated that its watchdog, reconnect
//! and checksum paths all work — which is the entire point.
//!
//! [`sl-server`]: https://example.org/sl-mobility

pub mod metrics;
pub mod plan;
pub mod proxy;

pub use plan::{ChaosAction, ChaosInjector, ChaosPlan};
pub use proxy::ChaosProxy;
