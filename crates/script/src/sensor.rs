//! One scripted sensor object.

use crate::spec::{Detection, Report, SensorSpec};
use sl_trace::UserId;
use sl_world::world::ObjectId;
use sl_world::Vec2;

/// Counters describing what a sensor experienced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorStats {
    /// Scans performed.
    pub scans: u64,
    /// Detections cached.
    pub detections: u64,
    /// Avatars in range but beyond the 16-detection cap.
    pub truncated: u64,
    /// Detections dropped because the cache was full and the HTTP
    /// channel throttled.
    pub dropped: u64,
    /// HTTP flushes performed.
    pub flushes: u64,
    /// Scans skipped because the object had expired and was not yet
    /// replicated.
    pub offline_scans: u64,
}

/// A deployed sensor: position, backing world object, cache and stats.
#[derive(Debug)]
pub struct Sensor {
    /// Index within the deployment grid.
    pub index: usize,
    /// Fixed position on the land.
    pub pos: Vec2,
    /// The world object backing this sensor (`None` while expired,
    /// waiting for replication).
    pub object: Option<ObjectId>,
    spec: SensorSpec,
    cache: Vec<Detection>,
    last_flush: f64,
    stats: SensorStats,
}

impl Sensor {
    /// Create a sensor at `pos` backed by `object`.
    pub fn new(index: usize, pos: Vec2, object: ObjectId, spec: SensorSpec) -> Self {
        Sensor {
            index,
            pos,
            object: Some(object),
            spec,
            cache: Vec::with_capacity(spec.cache_capacity()),
            // Allow an immediate first flush.
            last_flush: f64::NEG_INFINITY,
            stats: SensorStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> SensorStats {
        self.stats
    }

    /// Cached detections not yet flushed.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Perform one scan over the avatars physically present on the
    /// land. Returns a flush report when the cache filled up and the
    /// HTTP throttle admitted a post.
    ///
    /// `avatars` must be the *physical* positions (a scripted sensor
    /// senses the avatar on the bench, even though the map would report
    /// `{0,0,0}`).
    pub fn scan(&mut self, now: f64, avatars: &[(UserId, Vec2)]) -> Option<Report> {
        if self.object.is_none() {
            self.stats.offline_scans += 1;
            return None;
        }
        self.stats.scans += 1;

        // Detect the nearest `max_detections` avatars in range —
        // llSensor returns by distance, nearest first.
        let mut in_range: Vec<(f64, UserId, Vec2)> = avatars
            .iter()
            .filter_map(|&(u, p)| {
                let d = self.pos.distance(p);
                (d <= self.spec.range).then_some((d, u, p))
            })
            .collect();
        in_range.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        if in_range.len() > self.spec.max_detections {
            self.stats.truncated += (in_range.len() - self.spec.max_detections) as u64;
            in_range.truncate(self.spec.max_detections);
        }

        let capacity = self.spec.cache_capacity();
        for (_, user, pos) in in_range {
            if self.cache.len() >= capacity {
                self.stats.dropped += 1;
                continue;
            }
            self.cache.push(Detection {
                t: now,
                user,
                x: pos.x,
                y: pos.y,
            });
            self.stats.detections += 1;
        }

        if self.cache.len() >= capacity {
            return self.try_flush(now);
        }
        None
    }

    /// Attempt a flush (cache → HTTP). Honors the HTTP throttle: a
    /// denied flush keeps the cache (and subsequent detections drop).
    pub fn try_flush(&mut self, now: f64) -> Option<Report> {
        if self.cache.is_empty() {
            return None;
        }
        if now - self.last_flush < self.spec.http_min_interval {
            return None;
        }
        self.last_flush = now;
        self.stats.flushes += 1;
        Some(Report {
            sensor: self.index,
            sensor_pos: self.pos,
            t: now,
            detections: std::mem::take(&mut self.cache),
        })
    }

    /// Mark the backing object expired (data in flight is lost when the
    /// object vanishes — the cache dies with the script).
    pub fn expire(&mut self) {
        self.object = None;
        self.cache.clear();
    }

    /// Re-deploy with a fresh backing object.
    pub fn replicate(&mut self, object: ObjectId) {
        self.object = Some(object);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_small() -> SensorSpec {
        SensorSpec {
            range: 96.0,
            max_detections: 16,
            cache_bytes: 480, // capacity 10
            entry_bytes: 48,
            scan_period: 10.0,
            http_min_interval: 60.0,
        }
    }

    fn avatars_at(positions: &[(u32, f64, f64)]) -> Vec<(UserId, Vec2)> {
        positions
            .iter()
            .map(|&(u, x, y)| (UserId(u), Vec2::new(x, y)))
            .collect()
    }

    #[test]
    fn detects_only_in_range() {
        let mut s = Sensor::new(0, Vec2::new(0.0, 0.0), ObjectId(1), spec_small());
        let avs = avatars_at(&[(1, 50.0, 0.0), (2, 95.0, 0.0), (3, 97.0, 0.0)]);
        s.scan(10.0, &avs);
        assert_eq!(s.cache_len(), 2, "only the two within 96 m");
        assert_eq!(s.stats().detections, 2);
    }

    #[test]
    fn detection_cap_keeps_nearest() {
        let spec = SensorSpec {
            max_detections: 3,
            ..spec_small()
        };
        let mut s = Sensor::new(0, Vec2::new(0.0, 0.0), ObjectId(1), spec);
        let avs: Vec<(UserId, Vec2)> = (0..10)
            .map(|i| (UserId(i), Vec2::new(5.0 + i as f64 * 5.0, 0.0)))
            .collect();
        s.scan(10.0, &avs);
        assert_eq!(s.cache_len(), 3);
        assert_eq!(s.stats().truncated, 7);
    }

    #[test]
    fn cache_fills_then_flushes() {
        let mut s = Sensor::new(0, Vec2::new(0.0, 0.0), ObjectId(1), spec_small());
        // 5 avatars per scan, capacity 10: the second scan fills it.
        let avs = avatars_at(&[
            (1, 1.0, 0.0),
            (2, 2.0, 0.0),
            (3, 3.0, 0.0),
            (4, 4.0, 0.0),
            (5, 5.0, 0.0),
        ]);
        assert!(s.scan(10.0, &avs).is_none());
        let report = s.scan(20.0, &avs).expect("cache full -> flush");
        assert_eq!(report.detections.len(), 10);
        assert_eq!(s.cache_len(), 0);
        assert_eq!(s.stats().flushes, 1);
    }

    #[test]
    fn throttled_flush_drops_data() {
        let mut s = Sensor::new(0, Vec2::new(0.0, 0.0), ObjectId(1), spec_small());
        let avs = avatars_at(&[
            (1, 1.0, 0.0),
            (2, 2.0, 0.0),
            (3, 3.0, 0.0),
            (4, 4.0, 0.0),
            (5, 5.0, 0.0),
        ]);
        assert!(s.scan(10.0, &avs).is_none());
        assert!(s.scan(20.0, &avs).is_some(), "first flush admitted");
        // Refill the cache quickly; the next flush is inside the 60 s
        // throttle window, so detections beyond capacity drop.
        assert!(s.scan(30.0, &avs).is_none());
        assert!(s.scan(40.0, &avs).is_none(), "cache full, flush throttled");
        assert!(s.scan(50.0, &avs).is_none());
        assert!(s.stats().dropped > 0, "saturated sensor loses data");
        // After the throttle window, flushing succeeds again.
        let report = s.scan(90.0, &avs).expect("flush after throttle window");
        assert_eq!(report.t, 90.0);
    }

    #[test]
    fn expiry_loses_cache_and_stops_scans() {
        let mut s = Sensor::new(0, Vec2::new(0.0, 0.0), ObjectId(1), spec_small());
        let avs = avatars_at(&[(1, 1.0, 0.0)]);
        s.scan(10.0, &avs);
        assert_eq!(s.cache_len(), 1);
        s.expire();
        assert_eq!(s.cache_len(), 0, "cache dies with the object");
        assert!(s.scan(20.0, &avs).is_none());
        assert_eq!(s.stats().offline_scans, 1);
        assert_eq!(s.stats().scans, 1, "offline scan not counted as scan");
        // Replication brings it back.
        s.replicate(ObjectId(2));
        s.scan(30.0, &avs);
        assert_eq!(s.cache_len(), 1);
    }

    #[test]
    fn deterministic_tiebreak_on_equal_distance() {
        let spec = SensorSpec {
            max_detections: 1,
            ..spec_small()
        };
        let mut s = Sensor::new(0, Vec2::new(0.0, 0.0), ObjectId(1), spec);
        // Two avatars at identical distance: lower UserId wins.
        let avs = avatars_at(&[(9, 10.0, 0.0), (4, 0.0, 10.0)]);
        s.scan(10.0, &avs);
        let report = s.try_flush(100.0).unwrap();
        assert_eq!(report.detections[0].user, UserId(4));
    }
}
