//! The "external web server" side of the sensor architecture: collect
//! HTTP reports and reconstruct a mobility trace, then score it against
//! the ground truth the crawler would have seen.
//!
//! The reconstruction makes the sensor architecture's losses visible:
//! scan ticks during throttle saturation, detections beyond the 16-cap,
//! and whole coverage holes while objects are expired simply never
//! reach the sink.

use crate::spec::Report;
use serde::{Deserialize, Serialize};
use sl_trace::{LandMeta, Position, Snapshot, Trace, UserId};
use std::collections::BTreeMap;

/// Collects sensor reports and reconstructs a trace.
#[derive(Debug, Default)]
pub struct ReportSink {
    reports: Vec<Report>,
}

impl ReportSink {
    /// Empty sink.
    pub fn new() -> Self {
        ReportSink::default()
    }

    /// Ingest one HTTP report.
    pub fn ingest(&mut self, report: Report) {
        self.reports.push(report);
    }

    /// Ingest many reports.
    pub fn ingest_all(&mut self, reports: impl IntoIterator<Item = Report>) {
        for r in reports {
            self.ingest(r);
        }
    }

    /// Number of reports received.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when nothing has arrived.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Reconstruct the observed trace: detections are grouped by scan
    /// time into snapshots; a user detected by several sensors in the
    /// same scan is deduplicated (positions agree — sensors observe the
    /// same world).
    pub fn reconstruct(&self, meta: LandMeta, avatar_z: f64) -> Trace {
        // BTreeMap keyed by integer millisecond time: f64 keys are not
        // Ord and scan times are exact multiples of the period anyway.
        let mut by_time: BTreeMap<i64, BTreeMap<UserId, Position>> = BTreeMap::new();
        for report in &self.reports {
            for d in &report.detections {
                let key = (d.t * 1000.0).round() as i64;
                by_time
                    .entry(key)
                    .or_default()
                    .entry(d.user)
                    .or_insert(Position::new(d.x, d.y, avatar_z));
            }
        }
        let mut trace = Trace::new(meta);
        for (key, users) in by_time {
            let mut snap = Snapshot::new(key as f64 / 1000.0);
            for (user, pos) in users {
                snap.push(user, pos);
            }
            trace.push(snap);
        }
        trace
    }
}

/// Coverage of a reconstructed trace against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Ground-truth (user, snapshot) observations.
    pub truth_observations: usize,
    /// Reconstructed observations that match ground truth (same user
    /// present at the same snapshot time).
    pub captured: usize,
    /// Fraction captured.
    pub recall: f64,
    /// Ground-truth unique users seen at least once by the sensors.
    pub users_seen: usize,
    /// Ground-truth unique users overall.
    pub users_total: usize,
}

/// Score a sensor-reconstructed trace against the ground-truth trace.
/// Snapshots are matched by (rounded) time; ground-truth snapshots with
/// no sensor counterpart count fully as misses.
pub fn coverage(truth: &Trace, observed: &Trace) -> Coverage {
    use std::collections::{HashMap, HashSet};
    let mut observed_by_time: HashMap<i64, HashSet<UserId>> = HashMap::new();
    for snap in &observed.snapshots {
        let key = (snap.t * 1000.0).round() as i64;
        observed_by_time
            .entry(key)
            .or_default()
            .extend(snap.entries.iter().map(|o| o.user));
    }
    let mut truth_observations = 0usize;
    let mut captured = 0usize;
    let mut truth_users: HashSet<UserId> = HashSet::new();
    let mut seen_users: HashSet<UserId> = HashSet::new();
    for snap in &truth.snapshots {
        let key = (snap.t * 1000.0).round() as i64;
        let observed_users = observed_by_time.get(&key);
        for obs in &snap.entries {
            truth_observations += 1;
            truth_users.insert(obs.user);
            if observed_users.is_some_and(|s| s.contains(&obs.user)) {
                captured += 1;
                seen_users.insert(obs.user);
            }
        }
    }
    Coverage {
        truth_observations,
        captured,
        recall: if truth_observations == 0 {
            1.0
        } else {
            captured as f64 / truth_observations as f64
        },
        users_seen: seen_users.len(),
        users_total: truth_users.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Detection;
    use sl_world::Vec2;

    fn report(sensor: usize, t: f64, users: &[(u32, f64, f64)]) -> Report {
        Report {
            sensor,
            sensor_pos: Vec2::new(0.0, 0.0),
            t,
            detections: users
                .iter()
                .map(|&(u, x, y)| Detection {
                    t,
                    user: UserId(u),
                    x,
                    y,
                })
                .collect(),
        }
    }

    #[test]
    fn reconstruct_groups_by_time() {
        let mut sink = ReportSink::new();
        sink.ingest(report(0, 20.0, &[(1, 5.0, 5.0)]));
        sink.ingest(report(1, 10.0, &[(2, 50.0, 50.0)]));
        sink.ingest(report(0, 10.0, &[(1, 4.0, 4.0)]));
        let trace = sink.reconstruct(LandMeta::standard("T", 10.0), 22.0);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.snapshots[0].t, 10.0);
        assert_eq!(trace.snapshots[0].len(), 2);
        assert_eq!(trace.snapshots[1].t, 20.0);
    }

    #[test]
    fn duplicate_detections_deduplicated() {
        // Two sensors both detect user 1 at t=10.
        let mut sink = ReportSink::new();
        sink.ingest(report(0, 10.0, &[(1, 5.0, 5.0)]));
        sink.ingest(report(1, 10.0, &[(1, 5.0, 5.0)]));
        let trace = sink.reconstruct(LandMeta::standard("T", 10.0), 22.0);
        assert_eq!(trace.snapshots[0].len(), 1);
    }

    #[test]
    fn coverage_perfect_match() {
        let mut sink = ReportSink::new();
        sink.ingest(report(0, 10.0, &[(1, 5.0, 5.0), (2, 6.0, 6.0)]));
        let observed = sink.reconstruct(LandMeta::standard("T", 10.0), 22.0);
        let c = coverage(&observed, &observed);
        assert_eq!(c.recall, 1.0);
        assert_eq!(c.users_seen, 2);
    }

    #[test]
    fn coverage_counts_misses() {
        let mut truth = Trace::new(LandMeta::standard("T", 10.0));
        let mut s = Snapshot::new(10.0);
        s.push(UserId(1), Position::new(5.0, 5.0, 22.0));
        s.push(UserId(2), Position::new(200.0, 200.0, 22.0));
        truth.push(s);
        let mut s = Snapshot::new(20.0);
        s.push(UserId(1), Position::new(5.0, 5.0, 22.0));
        truth.push(s);

        // The sensor only ever caught user 1 at t=10.
        let mut sink = ReportSink::new();
        sink.ingest(report(0, 10.0, &[(1, 5.0, 5.0)]));
        let observed = sink.reconstruct(LandMeta::standard("T", 10.0), 22.0);

        let c = coverage(&truth, &observed);
        assert_eq!(c.truth_observations, 3);
        assert_eq!(c.captured, 1);
        assert!((c.recall - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.users_seen, 1);
        assert_eq!(c.users_total, 2);
    }

    #[test]
    fn empty_truth_recall_is_one() {
        let t = Trace::new(LandMeta::standard("T", 10.0));
        let c = coverage(&t, &t);
        assert_eq!(c.recall, 1.0);
    }
}
