//! # sl-script
//!
//! The paper's *first* monitoring architecture: scripted in-world
//! sensor objects (LSL-style), with every published limitation
//! faithfully modelled so the architecture comparison of §2 can be
//! reproduced:
//!
//! * sensing range 96 m;
//! * at most 16 avatars detected per scan;
//! * 16 KiB of local cache, flushed to an external web server over
//!   HTTP when full;
//! * HTTP flushes throttled by the grid (data is *lost* while the
//!   sensor is saturated — the granularity/duration trade-off the paper
//!   describes);
//! * objects cannot be deployed on private lands, and expire after a
//!   land-dependent lifetime on public lands (a replication manager
//!   re-deploys them on a schedule, with a coverage hole in between).
//!
//! Modules: [`spec`] (sensor parameters and report records),
//! [`sensor`] (one scripted object), [`network`] (deployment grid,
//! scan scheduling, replication), [`sink`] (report collection and
//! trace reconstruction, plus coverage scoring against ground truth).

#![warn(missing_docs)]

pub mod network;
pub mod sensor;
pub mod sink;
pub mod spec;

pub use network::SensorNetwork;
pub use sensor::Sensor;
pub use sink::{coverage, ReportSink};
pub use spec::{Detection, Report, SensorSpec};
