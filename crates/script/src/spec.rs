//! Sensor parameters and report records.

use serde::{Deserialize, Serialize};
use sl_trace::UserId;
use sl_world::Vec2;

/// Sensor configuration. Defaults are the constants the paper reports
/// for Second Life's scripted objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    /// Sensing range, meters (SL: 96 m).
    pub range: f64,
    /// Maximum avatars detected per scan (SL: 16).
    pub max_detections: usize,
    /// Local cache size in bytes (SL: 16 KiB).
    pub cache_bytes: usize,
    /// Bytes one detection record occupies in the cache (timestamp,
    /// avatar key, position — the paper's sensors stored exactly that).
    pub entry_bytes: usize,
    /// Seconds between scans ("tunable periodicity").
    pub scan_period: f64,
    /// Minimum seconds between HTTP flushes (the grid throttles
    /// scripted HTTP requests).
    pub http_min_interval: f64,
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec {
            range: 96.0,
            max_detections: 16,
            cache_bytes: 16 * 1024,
            entry_bytes: 48,
            scan_period: 10.0,
            http_min_interval: 60.0,
        }
    }
}

impl SensorSpec {
    /// How many detections fit in the cache.
    pub fn cache_capacity(&self) -> usize {
        self.cache_bytes / self.entry_bytes
    }
}

/// One sensed avatar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Scan time (virtual seconds).
    pub t: f64,
    /// Detected avatar.
    pub user: UserId,
    /// Avatar position at scan time.
    pub x: f64,
    /// Avatar position at scan time.
    pub y: f64,
}

/// One HTTP flush from a sensor to the web-server sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Which sensor (index in the deployment grid).
    pub sensor: usize,
    /// Sensor position.
    pub sensor_pos: Vec2,
    /// Flush time (virtual seconds).
    pub t: f64,
    /// The cached detections.
    pub detections: Vec<Detection>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let s = SensorSpec::default();
        assert_eq!(s.range, 96.0);
        assert_eq!(s.max_detections, 16);
        assert_eq!(s.cache_bytes, 16 * 1024);
    }

    #[test]
    fn cache_capacity_division() {
        let s = SensorSpec {
            cache_bytes: 1000,
            entry_bytes: 48,
            ..Default::default()
        };
        assert_eq!(s.cache_capacity(), 20);
    }

    #[test]
    fn report_serde_round_trip() {
        let r = Report {
            sensor: 3,
            sensor_pos: Vec2::new(64.0, 64.0),
            t: 120.0,
            detections: vec![Detection {
                t: 110.0,
                user: UserId(5),
                x: 10.0,
                y: 20.0,
            }],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
