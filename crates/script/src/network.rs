//! Sensor-network deployment and scheduling over a [`World`].
//!
//! Covers the land with a square grid of sensors (spacing `r·√2` so the
//! 96 m discs tile the square), drives scans at the configured period,
//! and replicates expired objects on a fixed schedule — the exact
//! counter-measure the paper describes ("our system replicates all
//! sensors in the same position at regular time intervals").

use crate::sensor::{Sensor, SensorStats};
use crate::spec::{Report, SensorSpec};
use sl_world::land::DeployError;
use sl_world::{Vec2, World};

/// A deployed sensor network bound to one world.
#[derive(Debug)]
pub struct SensorNetwork {
    sensors: Vec<Sensor>,
    spec: SensorSpec,
    /// Seconds between replication sweeps.
    replication_interval: f64,
    next_scan: f64,
    next_replication: f64,
}

impl SensorNetwork {
    /// Positions of a covering grid for a `width × height` land with
    /// sensing radius `range`: spacing `range·√2` guarantees every
    /// point lies within one sensor's disc.
    pub fn grid_positions(width: f64, height: f64, range: f64) -> Vec<Vec2> {
        assert!(range > 0.0 && width > 0.0 && height > 0.0);
        let spacing = range * std::f64::consts::SQRT_2;
        let nx = (width / spacing).ceil() as usize;
        let ny = (height / spacing).ceil() as usize;
        let mut out = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                out.push(Vec2::new(
                    (ix as f64 + 0.5) * width / nx as f64,
                    (iy as f64 + 0.5) * height / ny as f64,
                ));
            }
        }
        out
    }

    /// Deploy a covering grid on the world's land. Fails on private
    /// lands (unless `authorized`) — the restriction that pushed the
    /// paper's authors to the crawler architecture.
    pub fn deploy(
        world: &mut World,
        spec: SensorSpec,
        replication_interval: f64,
        authorized: bool,
    ) -> Result<SensorNetwork, DeployError> {
        let land = world.land();
        let positions = Self::grid_positions(land.area.width, land.area.height, spec.range);
        let mut sensors = Vec::with_capacity(positions.len());
        for (i, pos) in positions.into_iter().enumerate() {
            let object = world.deploy_object(pos, authorized)?;
            sensors.push(Sensor::new(i, pos, object, spec));
        }
        let now = world.clock();
        Ok(SensorNetwork {
            sensors,
            spec,
            replication_interval,
            next_scan: now + spec.scan_period,
            next_replication: now + replication_interval,
        })
    }

    /// Number of deployed sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// True when no sensors are deployed.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// The sensors (for inspection).
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// Aggregate counters over all sensors.
    pub fn total_stats(&self) -> SensorStats {
        let mut total = SensorStats::default();
        for s in &self.sensors {
            let st = s.stats();
            total.scans += st.scans;
            total.detections += st.detections;
            total.truncated += st.truncated;
            total.dropped += st.dropped;
            total.flushes += st.flushes;
            total.offline_scans += st.offline_scans;
        }
        total
    }

    /// Drive the network up to the world's current clock: perform due
    /// scans (and opportunistic flushes), detect expired objects, and
    /// replicate on schedule. Returns the HTTP reports emitted.
    ///
    /// Call after advancing the world; the network catches up on every
    /// scan tick it missed.
    pub fn step(&mut self, world: &mut World) -> Vec<Report> {
        let now = world.clock();
        let mut reports = Vec::new();

        // Expiry detection: a sensor whose object vanished goes offline.
        for s in &mut self.sensors {
            if let Some(obj) = s.object {
                if !world.object_exists(obj) {
                    s.expire();
                }
            }
        }

        // Replication sweep.
        while self.next_replication <= now {
            for s in &mut self.sensors {
                if s.object.is_none() {
                    if let Ok(obj) = world.deploy_object(s.pos, false) {
                        s.replicate(obj);
                    }
                }
            }
            self.next_replication += self.replication_interval;
        }

        // Scan ticks (catch up on all due ticks, scanning current
        // positions — a sensor cannot observe the past).
        while self.next_scan <= now {
            let avatars = world.physical_positions();
            for s in &mut self.sensors {
                if let Some(report) = s.scan(self.next_scan, &avatars) {
                    reports.push(report);
                } else if s.cache_len() * self.spec.entry_bytes >= self.spec.cache_bytes / 2 {
                    // Opportunistic flush of a half-full cache once the
                    // throttle window passed, so data is not held
                    // forever on quiet lands.
                    if let Some(report) = s.try_flush(self.next_scan) {
                        reports.push(report);
                    }
                }
            }
            self.next_scan += self.spec.scan_period;
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_world::presets::{apfel_land, dance_island};
    use sl_world::World;

    #[test]
    fn grid_covers_standard_land() {
        let positions = SensorNetwork::grid_positions(256.0, 256.0, 96.0);
        // 96·√2 ≈ 135.8 -> 2×2 grid.
        assert_eq!(positions.len(), 4);
        // Every probe point within range of some sensor.
        for ix in 0..=16 {
            for iy in 0..=16 {
                let p = Vec2::new(ix as f64 * 16.0, iy as f64 * 16.0);
                assert!(
                    positions.iter().any(|s| s.distance(p) <= 96.0),
                    "point {p:?} uncovered"
                );
            }
        }
    }

    #[test]
    fn deploy_fails_on_private_land() {
        let mut world = World::new(dance_island().config, 1);
        let err = SensorNetwork::deploy(&mut world, SensorSpec::default(), 600.0, false);
        assert!(matches!(err, Err(DeployError::PrivateLand)));
        // With authorization it works.
        let ok = SensorNetwork::deploy(&mut world, SensorSpec::default(), 600.0, true);
        assert!(ok.is_ok());
    }

    #[test]
    fn scans_collect_reports_on_public_land() {
        let mut world = World::new(apfel_land().config, 2);
        world.warm_up(3600.0);
        let mut net =
            SensorNetwork::deploy(&mut world, SensorSpec::default(), 600.0, false).unwrap();
        let mut reports = Vec::new();
        for _ in 0..360 {
            world.warm_up(10.0);
            reports.extend(net.step(&mut world));
        }
        let stats = net.total_stats();
        assert!(stats.scans > 0);
        assert!(stats.detections > 0, "someone should be sensed in an hour");
        // All detections inside the land.
        for r in &reports {
            for d in &r.detections {
                assert!((0.0..=256.0).contains(&d.x));
                assert!((0.0..=256.0).contains(&d.y));
            }
        }
    }

    #[test]
    fn expiry_and_replication_cycle() {
        // Apfel Land objects expire after 3600 s; replicate every 300 s.
        let mut world = World::new(apfel_land().config, 3);
        let mut net =
            SensorNetwork::deploy(&mut world, SensorSpec::default(), 300.0, false).unwrap();
        // Advance past expiry.
        world.warm_up(3700.0);
        net.step(&mut world);
        // At this point objects expired; replication should have
        // re-deployed them (replication sweeps caught up in step()).
        let offline = net.sensors().iter().filter(|s| s.object.is_none()).count();
        assert_eq!(offline, 0, "replication must restore expired sensors");
        // And the world actually holds fresh objects.
        assert_eq!(world.objects().len(), net.len());
        assert!(world.stats().objects_expired >= net.len() as u64);
    }

    #[test]
    fn offline_window_loses_scans() {
        let mut world = World::new(apfel_land().config, 4);
        world.warm_up(1800.0); // get some users on the land
        let mut net =
            SensorNetwork::deploy(&mut world, SensorSpec::default(), 10_000.0, false).unwrap();
        // Objects expire at +3600, replication only at +10000: a long
        // offline window.
        world.warm_up(5000.0);
        net.step(&mut world);
        let stats = net.total_stats();
        assert!(
            stats.offline_scans > 0,
            "scans during the expiry gap are lost"
        );
    }
}
